// Package cpu_test pins trap semantics across the whole engine matrix: for
// every trap family the reference interpreter, the legacy dispatcher, and
// the predecode dispatcher must agree — per engine configuration — on
// whether a program traps and which normalized kind it traps with. This is
// the hand-written complement to internal/fuzzgen's generated oracle: each
// row is one precisely-aimed program (division by zero, INT_MIN/-1, a load
// one byte past the page boundary, an out-of-range indirect call, ...)
// instead of a random one.
package cpu_test

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/cpu"
	"repro/internal/fuzzgen"
	"repro/internal/pipeline"
	"repro/internal/wasm"
)

// startSig is the kernel's entry signature: _start(argc, argv) -> exit.
var startSig = wasm.FuncType{
	Params:  []wasm.ValType{wasm.I32, wasm.I32},
	Results: []wasm.ValType{wasm.I32},
}

// buildStart assembles a one-page module whose _start body is produced by
// body; the builder tops up the function frame's End.
func buildStart(body func(b *wasm.ModuleBuilder, f *wasm.FuncBuilder)) *wasm.Module {
	b := wasm.NewModuleBuilder()
	b.Memory(1, 1)
	f := b.Func("_start", startSig)
	body(b, f)
	b.Export("_start", wasm.ExternFunc, f.Index())
	return b.Module()
}

// addIndirectTarget defines a leaf of signature sig returning 5, and a table
// of the given size with the leaf in slot 0 (further slots stay null).
func addIndirectTarget(b *wasm.ModuleBuilder, sig wasm.FuncType, tableSize uint32) {
	leaf := b.Func("leaf", sig)
	for _, t := range sig.Results {
		switch t {
		case wasm.I64:
			leaf.I64Const(5)
		default:
			leaf.I32Const(5)
		}
	}
	b.Table(tableSize)
	b.Elem(0, []uint32{leaf.Index()})
}

var i32Sig = wasm.FuncType{Results: []wasm.ValType{wasm.I32}}

// trapCases is the semantics table. Engines nil means the full wasm matrix
// (native, chrome, firefox); rows whose behavior is engine-defined restrict
// themselves to the configurations that pin it (the paper's JIT configs
// insert indirect-call signature checks, the native config does not).
var trapCases = []struct {
	name    string
	engines []string
	build   func(b *wasm.ModuleBuilder, f *wasm.FuncBuilder)
	want    fuzzgen.TrapKind
	exit    int // checked only when want == TrapNone
}{
	{
		name:  "clean-exit",
		build: func(b *wasm.ModuleBuilder, f *wasm.FuncBuilder) { f.I32Const(42) },
		want:  fuzzgen.TrapNone, exit: 42,
	},
	{
		name: "i32-div-zero",
		build: func(b *wasm.ModuleBuilder, f *wasm.FuncBuilder) {
			f.I32Const(7).I32Const(0).Op(wasm.OpI32DivS)
		},
		want: fuzzgen.TrapDivZero,
	},
	{
		name: "i64-div-zero",
		build: func(b *wasm.ModuleBuilder, f *wasm.FuncBuilder) {
			f.I64Const(7).I64Const(0).Op(wasm.OpI64DivS).Op(wasm.OpI32WrapI64)
		},
		want: fuzzgen.TrapDivZero,
	},
	{
		name: "i32-rem-zero",
		build: func(b *wasm.ModuleBuilder, f *wasm.FuncBuilder) {
			f.I32Const(7).I32Const(0).Op(wasm.OpI32RemS)
		},
		want: fuzzgen.TrapDivZero,
	},
	{
		name: "i32-overflow-intmin-div-minus1",
		build: func(b *wasm.ModuleBuilder, f *wasm.FuncBuilder) {
			f.I32Const(math.MinInt32).I32Const(-1).Op(wasm.OpI32DivS)
		},
		want: fuzzgen.TrapOverflow,
	},
	{
		name: "i64-overflow-intmin-div-minus1",
		build: func(b *wasm.ModuleBuilder, f *wasm.FuncBuilder) {
			f.I64Const(math.MinInt64).I64Const(-1).Op(wasm.OpI64DivS).Op(wasm.OpI32WrapI64)
		},
		want: fuzzgen.TrapOverflow,
	},
	{
		// wasm defines INT_MIN rem -1 as 0 — it must NOT trap anywhere.
		name: "i32-rem-intmin-minus1-defined",
		build: func(b *wasm.ModuleBuilder, f *wasm.FuncBuilder) {
			f.I32Const(math.MinInt32).I32Const(-1).Op(wasm.OpI32RemS)
		},
		want: fuzzgen.TrapNone, exit: 0,
	},
	{
		// The last fully in-bounds 4-byte load of a one-page memory.
		name: "load-last-word-in-bounds",
		build: func(b *wasm.ModuleBuilder, f *wasm.FuncBuilder) {
			f.I32Const(wasm.PageSize-4).Load(wasm.OpI32Load, 0)
		},
		want: fuzzgen.TrapNone, exit: 0,
	},
	{
		// First byte past the page boundary.
		name: "oob-load-page-boundary",
		build: func(b *wasm.ModuleBuilder, f *wasm.FuncBuilder) {
			f.I32Const(wasm.PageSize).Load(wasm.OpI32Load8U, 0)
		},
		want: fuzzgen.TrapOOB,
	},
	{
		// A 4-byte access straddling the boundary: 3 bytes in, 1 byte out.
		name: "oob-load-straddles-boundary",
		build: func(b *wasm.ModuleBuilder, f *wasm.FuncBuilder) {
			f.I32Const(wasm.PageSize-3).Load(wasm.OpI32Load, 0)
		},
		want: fuzzgen.TrapOOB,
	},
	{
		name: "oob-store-page-boundary",
		build: func(b *wasm.ModuleBuilder, f *wasm.FuncBuilder) {
			f.I32Const(wasm.PageSize-1).I32Const(0).Store(wasm.OpI32Store, 0)
			f.I32Const(9)
		},
		want: fuzzgen.TrapOOB,
	},
	{
		name: "oob-load-huge-address",
		build: func(b *wasm.ModuleBuilder, f *wasm.FuncBuilder) {
			f.I32Const(0x7ffffff0).Load(wasm.OpI32Load, 0)
		},
		want: fuzzgen.TrapOOB,
	},
	{
		// Offset pushes an otherwise in-bounds address past the boundary.
		name: "oob-load-via-offset",
		build: func(b *wasm.ModuleBuilder, f *wasm.FuncBuilder) {
			f.I32Const(wasm.PageSize-4).Load(wasm.OpI32Load, 8)
		},
		want: fuzzgen.TrapOOB,
	},
	{
		name: "indirect-call-out-of-table-bounds",
		build: func(b *wasm.ModuleBuilder, f *wasm.FuncBuilder) {
			addIndirectTarget(b, i32Sig, 2)
			f.I32Const(9).CallIndirect(i32Sig)
		},
		want: fuzzgen.TrapIndirect,
	},
	{
		name: "indirect-call-null-entry",
		build: func(b *wasm.ModuleBuilder, f *wasm.FuncBuilder) {
			addIndirectTarget(b, i32Sig, 2)
			f.I32Const(1).CallIndirect(i32Sig)
		},
		want: fuzzgen.TrapIndirect,
	},
	{
		// Signature checks are engine-inserted: the chrome and firefox
		// configurations arm IndirectCheck, the native one does not, so only
		// the checked engines pin this row.
		name:    "indirect-call-signature-mismatch",
		engines: []string{"chrome", "firefox"},
		build: func(b *wasm.ModuleBuilder, f *wasm.FuncBuilder) {
			i64Sig := wasm.FuncType{Results: []wasm.ValType{wasm.I64}}
			addIndirectTarget(b, i64Sig, 2)
			f.I32Const(0).CallIndirect(i32Sig)
		},
		want: fuzzgen.TrapIndirect,
	},
	{
		name: "unreachable",
		build: func(b *wasm.ModuleBuilder, f *wasm.FuncBuilder) {
			f.Op(wasm.OpUnreachable)
			f.I32Const(1)
		},
		want: fuzzgen.TrapUnreachable,
	},
	{
		name: "trunc-f64-nan",
		build: func(b *wasm.ModuleBuilder, f *wasm.FuncBuilder) {
			f.F64Const(math.NaN()).Op(wasm.OpI32TruncF64S)
		},
		want: fuzzgen.TrapConversion,
	},
	{
		name: "trunc-f64-out-of-range",
		build: func(b *wasm.ModuleBuilder, f *wasm.FuncBuilder) {
			f.F64Const(1e300).Op(wasm.OpI32TruncF64S)
		},
		want: fuzzgen.TrapConversion,
	},
	{
		name: "trunc-f64-negative-out-of-range",
		build: func(b *wasm.ModuleBuilder, f *wasm.FuncBuilder) {
			f.F64Const(-1e300).Op(wasm.OpI64TruncF64S).Op(wasm.OpI32WrapI64)
		},
		want: fuzzgen.TrapConversion,
	},
}

// interpretStart runs _start on the reference interpreter and returns its
// normalized outcome.
func interpretStart(t *testing.T, m *wasm.Module) (fuzzgen.TrapKind, int) {
	t.Helper()
	inst, err := wasm.Instantiate(m, nil)
	if err != nil {
		t.Fatalf("instantiating: %v", err)
	}
	inst.MaxSteps = 1_000_000
	ret, err := inst.Invoke("_start", 0, 0)
	if err != nil {
		var tr *wasm.Trap
		if errors.As(err, &tr) {
			return fuzzgen.TrapKindOf(tr.Msg), 128
		}
		t.Fatalf("interpreter: %v", err)
	}
	return fuzzgen.TrapNone, int(int32(ret[0]))
}

func TestTrapSemanticsAcrossEngines(t *testing.T) {
	ctx := context.Background()
	for _, tc := range trapCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			m := buildStart(tc.build)
			if err := wasm.Validate(m); err != nil {
				t.Fatalf("table module invalid: %v", err)
			}
			refKind, refExit := interpretStart(t, m)
			if refKind != tc.want {
				t.Fatalf("reference interpreter: trap kind %q, table says %q", refKind, tc.want)
			}
			if tc.want == fuzzgen.TrapNone && refExit != tc.exit {
				t.Fatalf("reference interpreter: exit %d, table says %d", refExit, tc.exit)
			}

			engines := tc.engines
			if engines == nil {
				engines = fuzzgen.DefaultEngines()
			}
			bytes := wasm.Encode(m)
			for _, eng := range engines {
				for _, dispatch := range []string{"predecode", "legacy"} {
					variant := eng + "/" + dispatch
					res, err := pipeline.Do(ctx, &pipeline.Request{
						Wasm:     bytes,
						Engine:   eng,
						Dispatch: dispatch,
						Fidelity: "exact",
						Argv:     []string{"trapsem"},
					})
					if err != nil {
						var te *cpu.TrapError
						if !errors.As(err, &te) {
							t.Errorf("%s: non-trap error: %v", variant, err)
							continue
						}
						got := fuzzgen.TrapKindOf(te.Msg)
						if tc.want == fuzzgen.TrapNone {
							t.Errorf("%s: trapped %q (%s), want clean exit %d", variant, got, te.Msg, tc.exit)
						} else if !fuzzgen.TrapMatches(got, tc.want) {
							t.Errorf("%s: trap kind %q (%s), want %q", variant, got, te.Msg, tc.want)
						}
						continue
					}
					if tc.want != fuzzgen.TrapNone {
						t.Errorf("%s: exited %d, want trap %q", variant, res.ExitCode, tc.want)
					} else if res.ExitCode != tc.exit {
						t.Errorf("%s: exit %d, want %d", variant, res.ExitCode, tc.exit)
					}
				}
			}
		})
	}
}
