package cpu

// Micro-op dispatch engine. The hot loop walks the pre-decoded uop stream
// (see decode.go): one dense switch, no per-instruction operand-kind or
// register-class interpretation, effective addresses computed from flat
// templates, and the instruction-cache line check inlined against the
// precomputed line number. All counter and cycle accounting is bit-identical
// to the legacy interpreter in exec_legacy.go, which remains the reference
// semantics and the fallback for unspecialized shapes (uSlow).

import (
	"encoding/binary"
	"math"
	"math/bits"

	"repro/internal/x86"
)

// haltSentinel is the return-address value that terminates execution.
const haltSentinel = ^uint64(0)

// Call runs the function whose entry instruction index is entry, with the
// machine's registers already holding the arguments, until the matching
// return. It returns RAX's final value.
func (m *Machine) Call(entry int) (uint64, error) {
	// Push the halt sentinel as the return address.
	m.Regs[x86.RSP] -= 8
	if err := m.store(uint32(m.Regs[x86.RSP]), 8, haltSentinel); err != nil {
		return 0, err
	}
	// The push above is bookkeeping, not program behaviour.
	m.Counters.Stores--
	m.rip = entry
	m.halted = false
	if err := m.run(); err != nil {
		return 0, err
	}
	return m.Regs[x86.RAX], nil
}

// extWidth maps extension modes to their source load width.
var extWidth = [5]uint8{extZX8: 1, extZX16: 2, extSX8: 1, extSX16: 2, extSXD: 4}

func (m *Machine) run() error {
	if m.NoPredecode {
		// The legacy interpreter is the reference oracle: it always runs
		// exact, regardless of the fidelity tier.
		return m.runLegacy()
	}
	switch m.fid {
	case FidelityFunctional:
		return m.runFunctional()
	case FidelitySampled:
		return m.runSampled()
	}
	return m.runExact()
}

// runExact is the full-fidelity micro-op loop: every icache/dcache access
// and branch prediction modeled on every retired instruction. It is also
// the detailed-window engine of the sampled tier, which sets stopAt to end
// a window: the loop then returns nil with rip (and lastILine) preserved,
// so re-entry continues bit-identically.
func (m *Machine) runExact() error {
	ops := m.uops
	for !m.halted {
		if m.Counters.Instructions >= m.stopAt {
			m.FlushCycles()
			return nil
		}
		if uint(m.rip) >= uint(len(ops)) {
			return &TrapError{Msg: "execution left code segment", PC: m.rip}
		}
		u := &ops[m.rip]
		m.Counters.Instructions++ // qBase is charged in FlushCycles
		if u.line != m.lastILine {
			// Inlined icache walk against the precomputed line number.
			// Unlike the legacy engine's lastLine (which taken branches
			// reset to force a probe), lastILine tracks the last line
			// actually probed: a repeat probe of that line is a guaranteed
			// hit with no counter or cycle effect, and dropping consecutive
			// duplicate touches never changes LRU order, so branches back
			// into the current line skip the probe bit-identically.
			m.lastILine = u.line
			// Every cache level has 64-byte lines, so line<<6 is
			// indistinguishable from the full fetch address here.
			if !m.L1I.Access(u.line << 6) {
				m.Counters.L1IMisses++
				if m.L2.Access(u.line << 6) {
					m.qacc += qL1IMiss
				} else {
					m.qacc += qL2IMiss
				}
			}
		}
		if m.MaxInstructions > 0 && m.Counters.Instructions > m.MaxInstructions {
			return &TrapError{Msg: "instruction budget exhausted", PC: m.rip}
		}
		if m.Counters.Instructions >= m.pollAt {
			m.pollAt = m.Counters.Instructions + m.pollEvery
			if err := m.interrupt(); err != nil {
				m.FlushCycles()
				return err
			}
		}

		var err error
		switch u.kind {
		case uSlow:
			err = m.exec(&m.Prog.Code[m.rip])

		case uNop:
			m.rip++

		case uMovRR:
			v := m.Regs[u.src]
			if u.w == 4 {
				v = uint64(uint32(v))
			}
			m.Regs[u.dst] = v
			m.rip++

		case uMovRI:
			m.Regs[u.dst] = u.imm
			m.rip++

		case uMovLoad:
			var v uint64
			if v, err = m.load(m.uea(u), u.w); err == nil {
				m.Regs[u.dst] = v
				m.rip++
			}

		case uMovStore:
			if err = m.store(m.uea(u), u.w, m.Regs[u.src]); err == nil {
				m.rip++
			}

		case uMovStoreI:
			if err = m.store(m.uea(u), u.w, u.imm); err == nil {
				m.rip++
			}

		case uExtR:
			v := extend(m.Regs[u.src], u.alu)
			if u.w == 4 {
				v = uint64(uint32(v))
			}
			m.Regs[u.dst] = v
			m.rip++

		case uExtM:
			var v uint64
			if v, err = m.load(m.uea(u), extWidth[u.alu]); err == nil {
				v = extend(v, u.alu)
				if u.w == 4 {
					v = uint64(uint32(v))
				}
				m.Regs[u.dst] = v
				m.rip++
			}

		case uLea:
			v := uint64(m.uea(u))
			if u.w == 4 {
				v = uint64(uint32(v))
			}
			m.Regs[u.dst] = v
			m.rip++

		case uAluRR:
			m.Regs[u.dst] = m.aluOp(u, m.Regs[u.dst], m.Regs[u.src])
			m.rip++

		case uAluRI:
			m.Regs[u.dst] = m.aluOp(u, m.Regs[u.dst], u.imm)
			m.rip++

		case uAluRM:
			var b uint64
			if b, err = m.load(m.uea(u), u.w); err == nil {
				m.Regs[u.dst] = m.aluOp(u, m.Regs[u.dst], b)
				m.rip++
			}

		case uAluMR:
			ea := m.uea(u)
			var a uint64
			if a, err = m.load(ea, u.w); err == nil {
				if err = m.store(ea, u.w, m.aluOp(u, a, m.Regs[u.src])); err == nil {
					m.rip++
				}
			}

		case uAluMI:
			ea := m.uea(u)
			var a uint64
			if a, err = m.load(ea, u.w); err == nil {
				if err = m.store(ea, u.w, m.aluOp(u, a, u.imm)); err == nil {
					m.rip++
				}
			}

		case uShiftR:
			var s uint
			if u.w == 4 {
				s = uint(m.Regs[u.src] & 31)
			} else {
				s = uint(m.Regs[u.src] & 63)
			}
			m.Regs[u.dst] = shiftOp(u, m.Regs[u.dst], s)
			m.rip++

		case uShiftI:
			m.Regs[u.dst] = shiftOp(u, m.Regs[u.dst], uint(u.imm))
			m.rip++

		case uNegR:
			v := -m.Regs[u.dst]
			if u.w == 4 {
				v = uint64(uint32(v))
			}
			m.Regs[u.dst] = v
			m.rip++

		case uNotR:
			v := ^m.Regs[u.dst]
			if u.w == 4 {
				v = uint64(uint32(v))
			}
			m.Regs[u.dst] = v
			m.rip++

		case uBitR:
			m.Regs[u.dst] = bitOp(u, m.Regs[u.src])
			m.rip++

		case uBitM:
			var v uint64
			if v, err = m.load(m.uea(u), u.w); err == nil {
				m.Regs[u.dst] = bitOp(u, v)
				m.rip++
			}

		case uCdq:
			m.execCdq(u.w)
			m.rip++

		case uDivR:
			d := m.Regs[u.dst]
			if u.w == 4 {
				d = uint64(uint32(d))
			}
			if err = m.execDiv(d, u.w, u.alu == 1); err == nil {
				m.rip++
			}

		case uDivM:
			var d uint64
			if d, err = m.load(m.uea(u), u.w); err == nil {
				if err = m.execDiv(d, u.w, u.alu == 1); err == nil {
					m.rip++
				}
			}

		case uCmpRR:
			m.setCmpFlags(m.Regs[u.dst], m.Regs[u.src], u.w)
			m.rip++

		case uCmpRI:
			m.setCmpFlags(m.Regs[u.dst], u.imm, u.w)
			m.rip++

		case uCmpRM:
			var b uint64
			if b, err = m.load(m.uea(u), u.w); err == nil {
				m.setCmpFlags(m.Regs[u.dst], b, u.w)
				m.rip++
			}

		case uCmpMR:
			var a uint64
			if a, err = m.load(m.uea(u), u.w); err == nil {
				m.setCmpFlags(a, m.Regs[u.src], u.w)
				m.rip++
			}

		case uCmpMI:
			var a uint64
			if a, err = m.load(m.uea(u), u.w); err == nil {
				m.setCmpFlags(a, u.imm, u.w)
				m.rip++
			}

		case uTestRR:
			m.setTestFlags(m.Regs[u.dst], m.Regs[u.src], u.w)
			m.rip++

		case uTestRI:
			m.setTestFlags(m.Regs[u.dst], u.imm, u.w)
			m.rip++

		case uSet:
			var v uint64
			if m.cc(u.cc) {
				v = 1
			}
			m.Regs[u.dst] = (m.Regs[u.dst] &^ 0xff) | v
			m.rip++

		case uCmovRR:
			if m.cc(u.cc) {
				v := m.Regs[u.src]
				if u.w == 4 {
					v = uint64(uint32(v))
				}
				m.Regs[u.dst] = v
			}
			m.rip++

		case uCmovRM:
			// cmov with a memory source performs the load either way.
			var v uint64
			if v, err = m.load(m.uea(u), u.w); err == nil {
				if m.cc(u.cc) {
					m.Regs[u.dst] = v
				}
				m.rip++
			}

		// Branch kinds inline the unconditional branchTo body. The legacy
		// engine's lastLine reset is not needed here: the micro-op engine
		// tracks the last probed line (lastILine), which branches must not
		// disturb.
		case uJmp:
			m.Counters.Branches++
			m.qacc += qBranch
			m.rip = int(u.tgt)

		case uJcc:
			m.Counters.Branches++
			m.Counters.CondBranches++
			m.qacc += qBranch
			taken := m.cc(u.cc)
			if !m.BP.Predict(uint32(u.imm), taken) {
				m.Counters.BranchMiss++
				m.qacc += qMispred
			}
			if taken {
				m.rip = int(u.tgt)
			} else {
				m.rip++
			}

		case uJmpTable:
			targets := m.Prog.Code[m.rip].TableTargets
			idx := int(uint32(m.Regs[u.dst]))
			if idx < 0 || idx >= len(targets) {
				err = &TrapError{Msg: "jump table index out of range", PC: m.rip}
				break
			}
			m.Counters.Loads++ // table entry fetch
			m.qacc += qLoad
			m.Counters.Branches++
			m.qacc += qBranch
			m.rip = targets[idx]

		case uCall:
			m.Regs[x86.RSP] -= 8
			a := uint32(m.Regs[x86.RSP])
			if s, off, ok := m.fastSlab(a, 8); ok {
				m.Counters.Stores++
				if a>>6 == m.lastDLine {
					m.qacc += qLoad
				} else {
					m.dcacheWalk(a)
				}
				binary.LittleEndian.PutUint64(s[off:], uint64(m.rip+1))
			} else if err = m.store(a, 8, uint64(m.rip+1)); err != nil {
				break
			}
			m.Counters.Branches++
			m.qacc += qBranch
			m.rip = int(u.tgt)

		case uCallR, uCallM:
			var t uint64
			if u.kind == uCallR {
				t = m.Regs[u.dst]
			} else if t, err = m.load(m.uea(u), 8); err != nil {
				break
			}
			if t >= uint64(len(ops)) {
				err = &TrapError{Msg: "indirect call to invalid target", PC: m.rip}
				break
			}
			m.Regs[x86.RSP] -= 8
			a := uint32(m.Regs[x86.RSP])
			if s, off, ok := m.fastSlab(a, 8); ok {
				m.Counters.Stores++
				if a>>6 == m.lastDLine {
					m.qacc += qLoad
				} else {
					m.dcacheWalk(a)
				}
				binary.LittleEndian.PutUint64(s[off:], uint64(m.rip+1))
			} else if err = m.store(a, 8, uint64(m.rip+1)); err != nil {
				break
			}
			m.Counters.Branches++
			m.qacc += qBranch
			m.rip = int(t)

		case uRet:
			a := uint32(m.Regs[x86.RSP])
			var ra uint64
			if s, off, ok := m.fastSlab(a, 8); ok {
				m.Counters.Loads++
				if a>>6 == m.lastDLine {
					m.qacc += qLoad
				} else {
					m.dcacheWalk(a)
				}
				ra = binary.LittleEndian.Uint64(s[off:])
			} else if ra, err = m.load(a, 8); err != nil {
				break
			}
			m.Regs[x86.RSP] += 8
			m.Counters.Branches++
			if ra == haltSentinel {
				m.halted = true
			} else {
				m.qacc += qBranch
				m.rip = int(ra)
			}

		case uPushR:
			m.Regs[x86.RSP] -= 8
			a := uint32(m.Regs[x86.RSP])
			if s, off, ok := m.fastSlab(a, 8); ok {
				m.Counters.Stores++
				if a>>6 == m.lastDLine {
					m.qacc += qLoad
				} else {
					m.dcacheWalk(a)
				}
				binary.LittleEndian.PutUint64(s[off:], m.Regs[u.src])
				m.rip++
			} else if err = m.store(a, 8, m.Regs[u.src]); err == nil {
				m.rip++
			}

		case uPushI:
			m.Regs[x86.RSP] -= 8
			if err = m.store(uint32(m.Regs[x86.RSP]), 8, u.imm); err == nil {
				m.rip++
			}

		case uPushM:
			var v uint64
			if v, err = m.load(m.uea(u), 8); err == nil {
				m.Regs[x86.RSP] -= 8
				if err = m.store(uint32(m.Regs[x86.RSP]), 8, v); err == nil {
					m.rip++
				}
			}

		case uPop:
			a := uint32(m.Regs[x86.RSP])
			if s, off, ok := m.fastSlab(a, 8); ok {
				m.Counters.Loads++
				if a>>6 == m.lastDLine {
					m.qacc += qLoad
				} else {
					m.dcacheWalk(a)
				}
				m.Regs[x86.RSP] += 8
				m.Regs[u.dst] = binary.LittleEndian.Uint64(s[off:])
				m.rip++
			} else {
				var v uint64
				if v, err = m.load(a, 8); err == nil {
					m.Regs[x86.RSP] += 8
					m.Regs[u.dst] = v
					m.rip++
				}
			}

		case uUd2:
			err = &TrapError{Msg: "unreachable executed (ud2)", PC: m.rip}

		case uCallHost:
			if m.Host == nil {
				err = &TrapError{Msg: "host call with no host bound", PC: m.rip}
				break
			}
			m.Counters.Branches++
			m.qacc += qCallHost
			if err = m.Host(m, int(u.tgt)); err == nil {
				m.rip++
			}

		case uMovsdRR:
			m.Xmm[u.dst] = m.Xmm[u.src]
			m.rip++

		case uMovsdLoad:
			var v uint64
			if v, err = m.load(m.uea(u), u.w); err == nil {
				m.Xmm[u.dst] = v
				m.rip++
			}

		case uMovsdStore:
			if err = m.store(m.uea(u), u.w, m.Xmm[u.src]); err == nil {
				m.rip++
			}

		case uFAluRR:
			m.Xmm[u.dst] = bitsOf(m.fAluOp(u, f64of(m.Xmm[u.dst], u.w), f64of(m.Xmm[u.src], u.w)), u.w)
			m.rip++

		case uFAluRM:
			a := f64of(m.Xmm[u.dst], u.w)
			var bv uint64
			if bv, err = m.load(m.uea(u), u.w); err == nil {
				m.Xmm[u.dst] = bitsOf(m.fAluOp(u, a, f64of(bv, u.w)), u.w)
				m.rip++
			}

		case uSqrtR:
			m.qacc += qFSqrt
			m.Xmm[u.dst] = bitsOf(math.Sqrt(f64of(m.Xmm[u.src], u.w)), u.w)
			m.rip++

		case uSqrtM:
			var bv uint64
			if bv, err = m.load(m.uea(u), u.w); err == nil {
				m.qacc += qFSqrt
				m.Xmm[u.dst] = bitsOf(math.Sqrt(f64of(bv, u.w)), u.w)
				m.rip++
			}

		case uUcomiR:
			m.setUcomiFlags(f64of(m.Xmm[u.dst], u.w), f64of(m.Xmm[u.src], u.w))
			m.rip++

		case uUcomiM:
			a := f64of(m.Xmm[u.dst], u.w)
			var bv uint64
			if bv, err = m.load(m.uea(u), u.w); err == nil {
				m.setUcomiFlags(a, f64of(bv, u.w))
				m.rip++
			}

		case uCvtSI2SDR:
			m.qacc += qCvt
			m.Xmm[u.dst] = math.Float64bits(cvtIntToF64(m.Regs[u.src], u.w, u.uns))
			m.rip++

		case uCvtSI2SDM:
			var v uint64
			if v, err = m.load(m.uea(u), u.w); err == nil {
				m.qacc += qCvt
				m.Xmm[u.dst] = math.Float64bits(cvtIntToF64(v, u.w, u.uns))
				m.rip++
			}

		case uCvtTSD2SIR:
			var r uint64
			if r, err = m.cvtF64ToInt(f64of(m.Xmm[u.src], u.alu), u.w, u.uns); err == nil {
				m.Regs[u.dst] = r
				m.rip++
			}

		case uCvtTSD2SIM:
			var bv uint64
			if bv, err = m.load(m.uea(u), u.alu); err == nil {
				var r uint64
				if r, err = m.cvtF64ToInt(f64of(bv, u.alu), u.w, u.uns); err == nil {
					m.Regs[u.dst] = r
					m.rip++
				}
			}

		case uCvtSD2SSR:
			m.qacc += qCvt
			m.Xmm[u.dst] = cvtSD2SS(m.Xmm[u.src])
			m.rip++

		case uCvtSD2SSM:
			var bv uint64
			if bv, err = m.load(m.uea(u), 8); err == nil {
				m.qacc += qCvt
				m.Xmm[u.dst] = cvtSD2SS(bv)
				m.rip++
			}

		case uCvtSS2SDR:
			m.qacc += qCvt
			m.Xmm[u.dst] = cvtSS2SD(m.Xmm[u.src])
			m.rip++

		case uCvtSS2SDM:
			var bv uint64
			if bv, err = m.load(m.uea(u), 4); err == nil {
				m.qacc += qCvt
				m.Xmm[u.dst] = cvtSS2SD(bv)
				m.rip++
			}

		case uMovqXR:
			v := m.Regs[u.src]
			if u.w == 4 {
				v = uint64(uint32(v))
			}
			m.Xmm[u.dst] = v
			m.rip++

		case uMovqRX:
			v := m.Xmm[u.src]
			if u.w == 4 {
				v = uint64(uint32(v))
			}
			m.Regs[u.dst] = v
			m.rip++

		case uLogicXX:
			if u.alu == 0 {
				m.Xmm[u.dst] &= m.Xmm[u.src]
			} else {
				m.Xmm[u.dst] ^= m.Xmm[u.src]
			}
			m.rip++

		case uLogicXM:
			var b uint64
			if b, err = m.load(m.uea(u), 8); err == nil {
				if u.alu == 0 {
					m.Xmm[u.dst] &= b
				} else {
					m.Xmm[u.dst] ^= b
				}
				m.rip++
			}

		case uRoundR:
			m.qacc += qCvt
			m.Xmm[u.dst] = bitsOf(roundMode(f64of(m.Xmm[u.src], u.w), u.alu), u.w)
			m.rip++

		case uRoundM:
			var bv uint64
			if bv, err = m.load(m.uea(u), u.w); err == nil {
				m.qacc += qCvt
				m.Xmm[u.dst] = bitsOf(roundMode(f64of(bv, u.w), u.alu), u.w)
				m.rip++
			}

		// Width-specialized memory kinds: the whole linear-memory fast path
		// (bounds check, retired-access counter, dcache memo, fixed-width
		// access) is inlined here; anything outside linear memory falls back
		// to the generic load/store with identical semantics.
		case uMovLoad64:
			a := m.uea(u)
			if s, off, ok := m.fastSlab(a, 8); ok {
				m.Counters.Loads++
				if a>>6 == m.lastDLine {
					m.qacc += qLoad
				} else {
					m.dcacheWalk(a)
				}
				m.Regs[u.dst] = binary.LittleEndian.Uint64(s[off:])
				m.rip++
			} else {
				var v uint64
				if v, err = m.load(a, 8); err == nil {
					m.Regs[u.dst] = v
					m.rip++
				}
			}

		case uMovLoad32:
			a := m.uea(u)
			if s, off, ok := m.fastSlab(a, 4); ok {
				m.Counters.Loads++
				if a>>6 == m.lastDLine {
					m.qacc += qLoad
				} else {
					m.dcacheWalk(a)
				}
				m.Regs[u.dst] = uint64(binary.LittleEndian.Uint32(s[off:]))
				m.rip++
			} else {
				var v uint64
				if v, err = m.load(a, 4); err == nil {
					m.Regs[u.dst] = v
					m.rip++
				}
			}

		case uMovStore64:
			a := m.uea(u)
			if s, off, ok := m.fastSlab(a, 8); ok {
				m.Counters.Stores++
				if a>>6 == m.lastDLine {
					m.qacc += qLoad
				} else {
					m.dcacheWalk(a)
				}
				binary.LittleEndian.PutUint64(s[off:], m.Regs[u.src])
				m.rip++
			} else if err = m.store(a, 8, m.Regs[u.src]); err == nil {
				m.rip++
			}

		case uMovStore32:
			a := m.uea(u)
			if s, off, ok := m.fastSlab(a, 4); ok {
				m.Counters.Stores++
				if a>>6 == m.lastDLine {
					m.qacc += qLoad
				} else {
					m.dcacheWalk(a)
				}
				binary.LittleEndian.PutUint32(s[off:], uint32(m.Regs[u.src]))
				m.rip++
			} else if err = m.store(a, 4, m.Regs[u.src]); err == nil {
				m.rip++
			}

		case uFLoad64:
			a := m.uea(u)
			if s, off, ok := m.fastSlab(a, 8); ok {
				m.Counters.Loads++
				if a>>6 == m.lastDLine {
					m.qacc += qLoad
				} else {
					m.dcacheWalk(a)
				}
				m.Xmm[u.dst] = binary.LittleEndian.Uint64(s[off:])
				m.rip++
			} else {
				var v uint64
				if v, err = m.load(a, 8); err == nil {
					m.Xmm[u.dst] = v
					m.rip++
				}
			}

		case uFLoad32:
			a := m.uea(u)
			if s, off, ok := m.fastSlab(a, 4); ok {
				m.Counters.Loads++
				if a>>6 == m.lastDLine {
					m.qacc += qLoad
				} else {
					m.dcacheWalk(a)
				}
				m.Xmm[u.dst] = uint64(binary.LittleEndian.Uint32(s[off:]))
				m.rip++
			} else {
				var v uint64
				if v, err = m.load(a, 4); err == nil {
					m.Xmm[u.dst] = v
					m.rip++
				}
			}

		case uFStore64:
			a := m.uea(u)
			if s, off, ok := m.fastSlab(a, 8); ok {
				m.Counters.Stores++
				if a>>6 == m.lastDLine {
					m.qacc += qLoad
				} else {
					m.dcacheWalk(a)
				}
				binary.LittleEndian.PutUint64(s[off:], m.Xmm[u.src])
				m.rip++
			} else if err = m.store(a, 8, m.Xmm[u.src]); err == nil {
				m.rip++
			}

		case uFStore32:
			a := m.uea(u)
			if s, off, ok := m.fastSlab(a, 4); ok {
				m.Counters.Stores++
				if a>>6 == m.lastDLine {
					m.qacc += qLoad
				} else {
					m.dcacheWalk(a)
				}
				binary.LittleEndian.PutUint32(s[off:], uint32(m.Xmm[u.src]))
				m.rip++
			} else if err = m.store(a, 4, m.Xmm[u.src]); err == nil {
				m.rip++
			}

		case uCmpRRJcc:
			m.setCmpFlags(m.Regs[u.dst], m.Regs[u.src], u.w)
			if !m.fusedJcc(u) {
				return &TrapError{Msg: "instruction budget exhausted", PC: m.rip}
			}

		case uCmpRIJcc:
			m.setCmpFlags(m.Regs[u.dst], u.imm, u.w)
			if !m.fusedJcc(u) {
				return &TrapError{Msg: "instruction budget exhausted", PC: m.rip}
			}

		case uTestRRJcc:
			m.setTestFlags(m.Regs[u.dst], m.Regs[u.src], u.w)
			if !m.fusedJcc(u) {
				return &TrapError{Msg: "instruction budget exhausted", PC: m.rip}
			}

		}

		if err != nil {
			m.FlushCycles()
			return err
		}
	}
	m.FlushCycles()
	return nil
}

// fusedJcc retires the branch half of a fused compare-and-branch pair: the
// per-instruction bookkeeping the main loop would have done for the jcc
// (instruction count, budget check; its icache fetch is a guaranteed
// same-line skip) followed by the branch itself. It returns false when the
// instruction budget expires at the branch, with rip advanced to it so the
// caller's trap carries the same PC the unfused engine would report.
func (m *Machine) fusedJcc(u *uop) bool {
	m.Counters.Instructions++
	if m.MaxInstructions > 0 && m.Counters.Instructions > m.MaxInstructions {
		m.rip++
		return false
	}
	m.Counters.Branches++
	m.Counters.CondBranches++
	m.qacc += qBranch
	taken := m.cc(u.cc)
	if !m.BP.Predict(uint32(u.disp), taken) {
		m.Counters.BranchMiss++
		m.qacc += qMispred
	}
	if taken {
		m.rip = int(u.tgt)
	} else {
		m.rip += 2
	}
	return true
}

// uea computes the effective address from a micro-op's pre-extracted
// addressing template. Base-less operands zero-extend the displacement (the
// engine's absolute structures live above 2 GiB), matching Machine.ea.
func (m *Machine) uea(u *uop) uint32 {
	var a uint64
	if u.base != 0xff {
		a = m.Regs[u.base] + uint64(int64(u.disp))
	} else {
		a = uint64(uint32(u.disp))
	}
	if u.idx != 0xff {
		a += m.Regs[u.idx] * uint64(u.scale)
	}
	return uint32(a)
}

// aluOp applies the integer ALU sub-operation, charging the multiply cost
// and applying 32-bit result truncation exactly like the legacy engine.
func (m *Machine) aluOp(u *uop, a, b uint64) uint64 {
	var r uint64
	switch u.alu {
	case aluAdd:
		r = a + b
	case aluSub:
		r = a - b
	case aluAnd:
		r = a & b
	case aluOr:
		r = a | b
	case aluXor:
		r = a ^ b
	case aluImul:
		r = a * b
		m.qacc += qMul
	}
	if u.w == 4 {
		r = uint64(uint32(r))
	}
	return r
}

// shiftOp applies a shift/rotate with a pre-masked count.
func shiftOp(u *uop, a uint64, s uint) uint64 {
	var r uint64
	switch u.alu {
	case shfShl:
		r = a << s
	case shfShr:
		if u.w == 4 {
			r = uint64(uint32(a) >> s)
		} else {
			r = a >> s
		}
	case shfSar:
		if u.w == 4 {
			r = uint64(uint32(int32(uint32(a)) >> s))
		} else {
			r = uint64(int64(a) >> s)
		}
	case shfRol:
		if u.w == 4 {
			r = uint64(bits.RotateLeft32(uint32(a), int(s)))
		} else {
			r = bits.RotateLeft64(a, int(s))
		}
	case shfRor:
		if u.w == 4 {
			r = uint64(bits.RotateLeft32(uint32(a), -int(s)))
		} else {
			r = bits.RotateLeft64(a, -int(s))
		}
	}
	if u.w == 4 {
		r = uint64(uint32(r))
	}
	return r
}

// extend applies a zero/sign-extension mode.
func extend(v uint64, mode uint8) uint64 {
	switch mode {
	case extZX8:
		return v & 0xff
	case extZX16:
		return v & 0xffff
	case extSX8:
		return uint64(int64(int8(v)))
	case extSX16:
		return uint64(int64(int16(v)))
	default: // extSXD
		return uint64(int64(int32(uint32(v))))
	}
}

// bitOp applies bsr/bsf/popcnt (modeled as lzcnt/tzcnt/popcnt).
func bitOp(u *uop, v uint64) uint64 {
	switch u.alu {
	case bitBsr:
		if u.w == 4 {
			return uint64(bits.LeadingZeros32(uint32(v)))
		}
		return uint64(bits.LeadingZeros64(v))
	case bitBsf:
		if u.w == 4 {
			return uint64(bits.TrailingZeros32(uint32(v)))
		}
		return uint64(bits.TrailingZeros64(v))
	default: // bitPopcnt
		if u.w == 4 {
			return uint64(bits.OnesCount32(uint32(v)))
		}
		return uint64(bits.OnesCount64(v))
	}
}

// fAluOp applies a scalar float op with Wasm min/max semantics and float32
// re-rounding at width 4, charging the op's cycle cost.
func (m *Machine) fAluOp(u *uop, a, b float64) float64 {
	var r float64
	switch u.alu {
	case fAdd:
		r = a + b
		m.qacc += qFALU
	case fSub:
		r = a - b
		m.qacc += qFALU
	case fMul:
		r = a * b
		m.qacc += qFALU
	case fDiv:
		r = a / b
		m.qacc += qFDiv
	case fMin:
		r = wasmMin(a, b)
		m.qacc += qFALU
	case fMax:
		r = wasmMax(a, b)
		m.qacc += qFALU
	}
	if u.w == 4 {
		// float32 rounding at each step
		r = float64(float32(r))
	}
	return r
}

// execCdq sign-extends RAX into RDX (cdq/cqo).
func (m *Machine) execCdq(w uint8) {
	if w == 4 {
		if int32(uint32(m.Regs[x86.RAX])) < 0 {
			m.Regs[x86.RDX] = uint64(uint32(0xffffffff))
		} else {
			m.Regs[x86.RDX] = 0
		}
	} else {
		if int64(m.Regs[x86.RAX]) < 0 {
			m.Regs[x86.RDX] = ^uint64(0)
		} else {
			m.Regs[x86.RDX] = 0
		}
	}
}

// execDiv divides RDX:RAX (modeled as RAX alone) by d, writing quotient and
// remainder to RAX/RDX with trap semantics and cycle charges.
func (m *Machine) execDiv(d uint64, w uint8, signed bool) error {
	if w == 4 {
		m.q(qDiv32)
	} else {
		m.q(qDiv64)
	}
	if w == 4 {
		div := uint32(d)
		if div == 0 {
			return &TrapError{Msg: "integer divide by zero", PC: m.rip}
		}
		a := uint32(m.Regs[x86.RAX])
		if signed {
			if int32(a) == math.MinInt32 && int32(div) == -1 {
				return &TrapError{Msg: "integer overflow", PC: m.rip}
			}
			q := int32(a) / int32(div)
			r := int32(a) % int32(div)
			m.Regs[x86.RAX] = uint64(uint32(q))
			m.Regs[x86.RDX] = uint64(uint32(r))
		} else {
			m.Regs[x86.RAX] = uint64(a / div)
			m.Regs[x86.RDX] = uint64(a % div)
		}
		return nil
	}
	if d == 0 {
		return &TrapError{Msg: "integer divide by zero", PC: m.rip}
	}
	a := m.Regs[x86.RAX]
	if signed {
		if int64(a) == math.MinInt64 && int64(d) == -1 {
			return &TrapError{Msg: "integer overflow", PC: m.rip}
		}
		m.Regs[x86.RAX] = uint64(int64(a) / int64(d))
		m.Regs[x86.RDX] = uint64(int64(a) % int64(d))
	} else {
		m.Regs[x86.RAX] = a / d
		m.Regs[x86.RDX] = a % d
	}
	return nil
}

// setUcomiFlags sets the flags of an unordered float compare.
func (m *Machine) setUcomiFlags(a, b float64) {
	f := &m.Flags
	f.OF, f.SF = false, false
	switch {
	case math.IsNaN(a) || math.IsNaN(b):
		f.ZF, f.CF, f.PF = true, true, true
	case a < b:
		f.ZF, f.CF, f.PF = false, true, false
	case a > b:
		f.ZF, f.CF, f.PF = false, false, false
	default:
		f.ZF, f.CF, f.PF = true, false, false
	}
}

// cvtIntToF64 converts an integer of width w (signed or unsigned) to f64.
func cvtIntToF64(v uint64, w uint8, uns bool) float64 {
	if uns {
		if w == 4 {
			return float64(uint32(v))
		}
		return float64(v)
	}
	if w == 4 {
		return float64(int32(uint32(v)))
	}
	return float64(int64(v))
}

// cvtF64ToInt truncates f to an integer of width w with wasm trap
// semantics, charging the conversion cost.
func (m *Machine) cvtF64ToInt(f float64, w uint8, uns bool) (uint64, error) {
	m.q(qCvt)
	if math.IsNaN(f) {
		return 0, &TrapError{Msg: "invalid conversion to integer", PC: m.rip}
	}
	t := math.Trunc(f)
	if uns {
		if w == 4 {
			if t < 0 || t > math.MaxUint32 {
				return 0, &TrapError{Msg: "integer overflow in conversion", PC: m.rip}
			}
			return uint64(uint32(t)), nil
		}
		if t < 0 || t >= math.MaxUint64 {
			return 0, &TrapError{Msg: "integer overflow in conversion", PC: m.rip}
		}
		return uint64(t), nil
	}
	if w == 4 {
		if t < math.MinInt32 || t > math.MaxInt32 {
			return 0, &TrapError{Msg: "integer overflow in conversion", PC: m.rip}
		}
		return uint64(uint32(int32(t))), nil
	}
	if t < math.MinInt64 || t >= math.MaxInt64 {
		return 0, &TrapError{Msg: "integer overflow in conversion", PC: m.rip}
	}
	return uint64(int64(t)), nil
}

// roundMode applies a roundsd rounding mode.
func roundMode(f float64, mode uint8) float64 {
	switch mode {
	case 0:
		return math.RoundToEven(f)
	case 1:
		return math.Floor(f)
	case 2:
		return math.Ceil(f)
	default:
		return math.Trunc(f)
	}
}

// branchTo redirects control and charges branch costs. Branch counters are
// architectural and always move; the predictor (and its BranchMiss counter)
// is timing state, skipped while timing is suppressed so the uSlow/legacy
// fallback stays usable from the functional engine.
func (m *Machine) branchTo(target int, conditional, taken bool, addr uint32) {
	m.Counters.Branches++
	m.q(qBranch)
	if conditional {
		m.Counters.CondBranches++
		if !m.noTime {
			if !m.BP.Predict(addr, taken) {
				m.Counters.BranchMiss++
				m.q(qMispred)
			}
		} else if m.warm && !m.BP.Predict(addr, taken) {
			// Sampled fast-forward: the predictor is simulated always-on
			// (state and mispredict count), only the cycle charge is omitted.
			m.Counters.BranchMiss++
		}
	}
	if taken {
		m.rip = target
		m.lastLine = ^uint32(0) // force an i-cache probe at the target
	} else {
		m.rip++
	}
}
