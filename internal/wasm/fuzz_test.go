package wasm

import (
	"bytes"
	"testing"
)

// fuzzSeedModules builds a few representative modules with the builder —
// the same surface internal/fuzzgen generates through — so both fuzz
// targets start from structurally interesting corpora even before the
// fuzzing engine mutates anything.
func fuzzSeedModules() [][]byte {
	var seeds [][]byte

	// Minimal valid module: magic + version only.
	seeds = append(seeds, []byte("\x00asm\x01\x00\x00\x00"))

	// One exported function with arithmetic, a block, and a memory access.
	{
		b := NewModuleBuilder()
		b.Memory(1, 2)
		g := b.GlobalI32(7)
		f := b.Func("f", FuncType{Params: []ValType{I32}, Results: []ValType{I32}})
		f.Block(BlockOf(I32))
		f.LocalGet(0)
		f.I32Const(3)
		f.Op(OpI32Add)
		f.End()
		f.GlobalGet(g)
		f.Op(OpI32Add)
		f.I32Const(16)
		f.Load(OpI32Load, 4)
		f.Op(OpI32Add)
		b.Export("f", ExternFunc, f.Index())
		seeds = append(seeds, Encode(b.Module()))
	}

	// An indirect call through a table plus a data segment.
	{
		b := NewModuleBuilder()
		b.Memory(1, 1)
		b.Data(8, []byte{1, 2, 3, 4})
		sig := FuncType{Results: []ValType{I32}}
		leaf := b.Func("leaf", sig)
		leaf.I32Const(42)
		start := b.Func("_start", sig)
		b.Table(1)
		b.Elem(0, []uint32{leaf.Index()})
		start.I32Const(0)
		start.CallIndirect(sig)
		b.Export("_start", ExternFunc, start.Index())
		seeds = append(seeds, Encode(b.Module()))
	}

	return seeds
}

// FuzzValidate throws arbitrary bytes at the decoder and the validator:
// whatever the input, they must return an error or a module — never panic.
// Hostile inputs reach Decode through the pipeline's raw-wasm request path,
// so "garbage in, error out" is a load-bearing contract, not hygiene.
func FuzzValidate(f *testing.F) {
	for _, s := range fuzzSeedModules() {
		f.Add(s)
	}
	// Truncations and corruptions of a valid header.
	f.Add([]byte("\x00asm"))
	f.Add([]byte("\x00asm\x01\x00\x00\x00\x01\xff"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, p []byte) {
		m, err := Decode(p)
		if err != nil {
			return
		}
		_ = Validate(m) // must not panic either way
	})
}

// FuzzEncodeDecodeRoundTrip pins the binary codec: any bytes that decode
// must re-encode to something that decodes to the same encoding — i.e.
// Encode∘Decode is a projection onto a canonical form, and the canonical
// form is a fixed point byte for byte. The committed fuzzgen corpus and the
// shrinker's cloneModule both rely on exactly this.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	for _, s := range fuzzSeedModules() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, p []byte) {
		m, err := Decode(p)
		if err != nil {
			return
		}
		enc := Encode(m)
		m2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v", err)
		}
		if enc2 := Encode(m2); !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical encoding is not a fixed point:\n first: %x\nsecond: %x", enc, enc2)
		}
	})
}
