package wasm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/leb128"
)

// Magic and version prefix every WebAssembly binary module.
var (
	Magic   = []byte{0x00, 0x61, 0x73, 0x6d}
	Version = []byte{0x01, 0x00, 0x00, 0x00}
)

// Section ids in the binary format.
const (
	secCustom   = 0
	secType     = 1
	secImport   = 2
	secFunction = 3
	secTable    = 4
	secMemory   = 5
	secGlobal   = 6
	secExport   = 7
	secStart    = 8
	secElem     = 9
	secCode     = 10
	secData     = 11
)

// Encode serializes m to the WebAssembly binary format.
func Encode(m *Module) []byte {
	var out []byte
	out = append(out, Magic...)
	out = append(out, Version...)

	section := func(id byte, body []byte) {
		if len(body) == 0 {
			return
		}
		out = append(out, id)
		out = leb128.AppendUint(out, uint64(len(body)))
		out = append(out, body...)
	}

	// Type section.
	if len(m.Types) > 0 {
		var b []byte
		b = leb128.AppendUint(b, uint64(len(m.Types)))
		for _, t := range m.Types {
			b = append(b, 0x60)
			b = leb128.AppendUint(b, uint64(len(t.Params)))
			for _, p := range t.Params {
				b = append(b, byte(p))
			}
			b = leb128.AppendUint(b, uint64(len(t.Results)))
			for _, r := range t.Results {
				b = append(b, byte(r))
			}
		}
		section(secType, b)
	}

	// Import section.
	if len(m.Imports) > 0 {
		var b []byte
		b = leb128.AppendUint(b, uint64(len(m.Imports)))
		for _, im := range m.Imports {
			b = appendName(b, im.Module)
			b = appendName(b, im.Name)
			b = append(b, byte(im.Kind))
			switch im.Kind {
			case ExternFunc:
				b = leb128.AppendUint(b, uint64(im.TypeIdx))
			case ExternTable:
				b = append(b, 0x70) // funcref
				b = appendLimits(b, im.Table.Limits)
			case ExternMemory:
				b = appendLimits(b, im.Mem)
			case ExternGlobal:
				b = append(b, byte(im.GlobalType.Type))
				b = appendBool(b, im.GlobalType.Mutable)
			}
		}
		section(secImport, b)
	}

	// Function section.
	if len(m.Funcs) > 0 {
		var b []byte
		b = leb128.AppendUint(b, uint64(len(m.Funcs)))
		for _, f := range m.Funcs {
			b = leb128.AppendUint(b, uint64(f.TypeIdx))
		}
		section(secFunction, b)
	}

	// Table section.
	if len(m.Tables) > 0 {
		var b []byte
		b = leb128.AppendUint(b, uint64(len(m.Tables)))
		for _, t := range m.Tables {
			b = append(b, 0x70)
			b = appendLimits(b, t.Limits)
		}
		section(secTable, b)
	}

	// Memory section.
	if len(m.Mems) > 0 {
		var b []byte
		b = leb128.AppendUint(b, uint64(len(m.Mems)))
		for _, l := range m.Mems {
			b = appendLimits(b, l)
		}
		section(secMemory, b)
	}

	// Global section.
	if len(m.Globals) > 0 {
		var b []byte
		b = leb128.AppendUint(b, uint64(len(m.Globals)))
		for _, g := range m.Globals {
			b = append(b, byte(g.Type.Type))
			b = appendBool(b, g.Type.Mutable)
			b = appendInstr(b, g.Init)
			b = append(b, byte(OpEnd))
		}
		section(secGlobal, b)
	}

	// Export section.
	if len(m.Exports) > 0 {
		var b []byte
		b = leb128.AppendUint(b, uint64(len(m.Exports)))
		for _, e := range m.Exports {
			b = appendName(b, e.Name)
			b = append(b, byte(e.Kind))
			b = leb128.AppendUint(b, uint64(e.Index))
		}
		section(secExport, b)
	}

	// Start section.
	if m.Start != nil {
		var b []byte
		b = leb128.AppendUint(b, uint64(*m.Start))
		section(secStart, b)
	}

	// Element section.
	if len(m.Elems) > 0 {
		var b []byte
		b = leb128.AppendUint(b, uint64(len(m.Elems)))
		for _, e := range m.Elems {
			b = leb128.AppendUint(b, uint64(e.TableIdx))
			b = appendInstr(b, e.Offset)
			b = append(b, byte(OpEnd))
			b = leb128.AppendUint(b, uint64(len(e.Funcs)))
			for _, f := range e.Funcs {
				b = leb128.AppendUint(b, uint64(f))
			}
		}
		section(secElem, b)
	}

	// Code section.
	if len(m.Funcs) > 0 {
		var b []byte
		b = leb128.AppendUint(b, uint64(len(m.Funcs)))
		for _, f := range m.Funcs {
			body := encodeFuncBody(&f)
			b = leb128.AppendUint(b, uint64(len(body)))
			b = append(b, body...)
		}
		section(secCode, b)
	}

	// Data section.
	if len(m.Data) > 0 {
		var b []byte
		b = leb128.AppendUint(b, uint64(len(m.Data)))
		for _, d := range m.Data {
			b = leb128.AppendUint(b, uint64(d.MemIdx))
			b = appendInstr(b, d.Offset)
			b = append(b, byte(OpEnd))
			b = leb128.AppendUint(b, uint64(len(d.Bytes)))
			b = append(b, d.Bytes...)
		}
		section(secData, b)
	}

	return out
}

func appendName(b []byte, s string) []byte {
	b = leb128.AppendUint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendLimits(b []byte, l Limits) []byte {
	if l.HasMax {
		b = append(b, 1)
		b = leb128.AppendUint(b, uint64(l.Min))
		return leb128.AppendUint(b, uint64(l.Max))
	}
	b = append(b, 0)
	return leb128.AppendUint(b, uint64(l.Min))
}

func encodeFuncBody(f *Func) []byte {
	var b []byte
	// Run-length encode locals.
	type run struct {
		n int
		t ValType
	}
	var runs []run
	for _, t := range f.Locals {
		if len(runs) > 0 && runs[len(runs)-1].t == t {
			runs[len(runs)-1].n++
		} else {
			runs = append(runs, run{1, t})
		}
	}
	b = leb128.AppendUint(b, uint64(len(runs)))
	for _, r := range runs {
		b = leb128.AppendUint(b, uint64(r.n))
		b = append(b, byte(r.t))
	}
	for _, in := range f.Body {
		b = appendInstr(b, in)
	}
	return b
}

func appendInstr(b []byte, in Instr) []byte {
	b = append(b, byte(in.Op))
	switch in.Op {
	case OpBlock, OpLoop, OpIf:
		if in.Block.HasResult {
			b = append(b, byte(in.Block.Result))
		} else {
			b = append(b, 0x40)
		}
	case OpBr, OpBrIf, OpCall, OpLocalGet, OpLocalSet, OpLocalTee, OpGlobalGet, OpGlobalSet:
		b = leb128.AppendUint(b, uint64(in.I64))
	case OpCallIndirect:
		b = leb128.AppendUint(b, uint64(in.I64))
		b = append(b, 0x00) // table index (MVP: always 0)
	case OpBrTable:
		b = leb128.AppendUint(b, uint64(len(in.Table)-1))
		for _, t := range in.Table {
			b = leb128.AppendUint(b, uint64(t))
		}
	case OpI32Const:
		b = leb128.AppendInt(b, int64(int32(in.I64)))
	case OpI64Const:
		b = leb128.AppendInt(b, in.I64)
	case OpF32Const:
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], math.Float32bits(float32(in.F64)))
		b = append(b, buf[:]...)
	case OpF64Const:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(in.F64))
		b = append(b, buf[:]...)
	case OpMemorySize, OpMemoryGrow:
		b = append(b, 0x00)
	default:
		if in.Op.IsMemAccess() {
			b = leb128.AppendUint(b, uint64(in.Align))
			b = leb128.AppendUint(b, uint64(in.Offset))
		}
	}
	return b
}

// decoder walks a byte slice with position tracking.
type decoder struct {
	p   []byte
	pos int
}

func (d *decoder) eof() bool { return d.pos >= len(d.p) }

func (d *decoder) byte() (byte, error) {
	if d.eof() {
		return 0, io.ErrUnexpectedEOF
	}
	b := d.p[d.pos]
	d.pos++
	return b, nil
}

func (d *decoder) bytes(n int) ([]byte, error) {
	if n < 0 || d.pos+n > len(d.p) {
		return nil, io.ErrUnexpectedEOF
	}
	b := d.p[d.pos : d.pos+n]
	d.pos += n
	return b, nil
}

func (d *decoder) uint(bits uint) (uint64, error) {
	v, n, err := leb128.Uint(d.p[d.pos:], bits)
	if err != nil {
		return 0, err
	}
	d.pos += n
	return v, nil
}

func (d *decoder) int(bits uint) (int64, error) {
	v, n, err := leb128.Int(d.p[d.pos:], bits)
	if err != nil {
		return 0, err
	}
	d.pos += n
	return v, nil
}

func (d *decoder) u32() (uint32, error) {
	v, err := d.uint(32)
	return uint32(v), err
}

func (d *decoder) name() (string, error) {
	n, err := d.u32()
	if err != nil {
		return "", err
	}
	b, err := d.bytes(int(n))
	return string(b), err
}

func (d *decoder) limits() (Limits, error) {
	var l Limits
	flag, err := d.byte()
	if err != nil {
		return l, err
	}
	l.Min, err = d.u32()
	if err != nil {
		return l, err
	}
	if flag == 1 {
		l.HasMax = true
		l.Max, err = d.u32()
		if err != nil {
			return l, err
		}
	} else if flag != 0 {
		return l, fmt.Errorf("wasm: bad limits flag 0x%02x", flag)
	}
	return l, nil
}

func (d *decoder) valtype() (ValType, error) {
	b, err := d.byte()
	if err != nil {
		return 0, err
	}
	t := ValType(b)
	if !t.Valid() {
		return 0, fmt.Errorf("wasm: bad value type 0x%02x", b)
	}
	return t, nil
}

// Decode parses a WebAssembly binary module.
func Decode(p []byte) (*Module, error) {
	d := &decoder{p: p}
	hdr, err := d.bytes(8)
	if err != nil {
		return nil, errors.New("wasm: truncated header")
	}
	for i := range Magic {
		if hdr[i] != Magic[i] {
			return nil, errors.New("wasm: bad magic")
		}
	}
	for i := range Version {
		if hdr[4+i] != Version[i] {
			return nil, errors.New("wasm: unsupported version")
		}
	}

	m := &Module{}
	var funcTypeIdxs []uint32
	lastSec := -1
	for !d.eof() {
		id, err := d.byte()
		if err != nil {
			return nil, err
		}
		size, err := d.u32()
		if err != nil {
			return nil, err
		}
		body, err := d.bytes(int(size))
		if err != nil {
			return nil, fmt.Errorf("wasm: truncated section %d", id)
		}
		if id != secCustom {
			if int(id) <= lastSec {
				return nil, fmt.Errorf("wasm: section %d out of order", id)
			}
			lastSec = int(id)
		}
		sd := &decoder{p: body}
		switch id {
		case secCustom:
			// Skipped (names etc. are not needed for execution).
		case secType:
			if err := decodeTypeSection(sd, m); err != nil {
				return nil, err
			}
		case secImport:
			if err := decodeImportSection(sd, m); err != nil {
				return nil, err
			}
		case secFunction:
			n, err := sd.u32()
			if err != nil {
				return nil, err
			}
			for i := uint32(0); i < n; i++ {
				ti, err := sd.u32()
				if err != nil {
					return nil, err
				}
				funcTypeIdxs = append(funcTypeIdxs, ti)
			}
		case secTable:
			n, err := sd.u32()
			if err != nil {
				return nil, err
			}
			for i := uint32(0); i < n; i++ {
				et, err := sd.byte()
				if err != nil {
					return nil, err
				}
				if et != 0x70 {
					return nil, fmt.Errorf("wasm: unsupported table elem type 0x%02x", et)
				}
				l, err := sd.limits()
				if err != nil {
					return nil, err
				}
				m.Tables = append(m.Tables, Table{Limits: l})
			}
		case secMemory:
			n, err := sd.u32()
			if err != nil {
				return nil, err
			}
			for i := uint32(0); i < n; i++ {
				l, err := sd.limits()
				if err != nil {
					return nil, err
				}
				m.Mems = append(m.Mems, l)
			}
		case secGlobal:
			if err := decodeGlobalSection(sd, m); err != nil {
				return nil, err
			}
		case secExport:
			n, err := sd.u32()
			if err != nil {
				return nil, err
			}
			for i := uint32(0); i < n; i++ {
				name, err := sd.name()
				if err != nil {
					return nil, err
				}
				kind, err := sd.byte()
				if err != nil {
					return nil, err
				}
				idx, err := sd.u32()
				if err != nil {
					return nil, err
				}
				m.Exports = append(m.Exports, Export{Name: name, Kind: ExternKind(kind), Index: idx})
			}
		case secStart:
			idx, err := sd.u32()
			if err != nil {
				return nil, err
			}
			m.Start = &idx
		case secElem:
			if err := decodeElemSection(sd, m); err != nil {
				return nil, err
			}
		case secCode:
			if err := decodeCodeSection(sd, m, funcTypeIdxs); err != nil {
				return nil, err
			}
		case secData:
			if err := decodeDataSection(sd, m); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("wasm: unknown section id %d", id)
		}
	}
	if len(m.Funcs) != len(funcTypeIdxs) {
		return nil, fmt.Errorf("wasm: function section declares %d funcs but code section has %d", len(funcTypeIdxs), len(m.Funcs))
	}
	return m, nil
}

func decodeTypeSection(d *decoder, m *Module) error {
	n, err := d.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		form, err := d.byte()
		if err != nil {
			return err
		}
		if form != 0x60 {
			return fmt.Errorf("wasm: bad functype form 0x%02x", form)
		}
		var ft FuncType
		np, err := d.u32()
		if err != nil {
			return err
		}
		for j := uint32(0); j < np; j++ {
			t, err := d.valtype()
			if err != nil {
				return err
			}
			ft.Params = append(ft.Params, t)
		}
		nr, err := d.u32()
		if err != nil {
			return err
		}
		for j := uint32(0); j < nr; j++ {
			t, err := d.valtype()
			if err != nil {
				return err
			}
			ft.Results = append(ft.Results, t)
		}
		m.Types = append(m.Types, ft)
	}
	return nil
}

func decodeImportSection(d *decoder, m *Module) error {
	n, err := d.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		var im Import
		if im.Module, err = d.name(); err != nil {
			return err
		}
		if im.Name, err = d.name(); err != nil {
			return err
		}
		kind, err := d.byte()
		if err != nil {
			return err
		}
		im.Kind = ExternKind(kind)
		switch im.Kind {
		case ExternFunc:
			if im.TypeIdx, err = d.u32(); err != nil {
				return err
			}
		case ExternTable:
			et, err := d.byte()
			if err != nil {
				return err
			}
			if et != 0x70 {
				return fmt.Errorf("wasm: unsupported table elem type 0x%02x", et)
			}
			if im.Table.Limits, err = d.limits(); err != nil {
				return err
			}
		case ExternMemory:
			if im.Mem, err = d.limits(); err != nil {
				return err
			}
		case ExternGlobal:
			t, err := d.valtype()
			if err != nil {
				return err
			}
			mut, err := d.byte()
			if err != nil {
				return err
			}
			im.GlobalType = GlobalType{Type: t, Mutable: mut == 1}
		default:
			return fmt.Errorf("wasm: bad import kind %d", kind)
		}
		m.Imports = append(m.Imports, im)
	}
	return nil
}

func decodeGlobalSection(d *decoder, m *Module) error {
	n, err := d.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		t, err := d.valtype()
		if err != nil {
			return err
		}
		mut, err := d.byte()
		if err != nil {
			return err
		}
		init, err := decodeConstExpr(d)
		if err != nil {
			return err
		}
		m.Globals = append(m.Globals, Global{
			Type: GlobalType{Type: t, Mutable: mut == 1},
			Init: init,
		})
	}
	return nil
}

func decodeElemSection(d *decoder, m *Module) error {
	n, err := d.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		var e Elem
		if e.TableIdx, err = d.u32(); err != nil {
			return err
		}
		if e.Offset, err = decodeConstExpr(d); err != nil {
			return err
		}
		cnt, err := d.u32()
		if err != nil {
			return err
		}
		for j := uint32(0); j < cnt; j++ {
			f, err := d.u32()
			if err != nil {
				return err
			}
			e.Funcs = append(e.Funcs, f)
		}
		m.Elems = append(m.Elems, e)
	}
	return nil
}

func decodeDataSection(d *decoder, m *Module) error {
	n, err := d.u32()
	if err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		var seg Data
		if seg.MemIdx, err = d.u32(); err != nil {
			return err
		}
		if seg.Offset, err = decodeConstExpr(d); err != nil {
			return err
		}
		sz, err := d.u32()
		if err != nil {
			return err
		}
		b, err := d.bytes(int(sz))
		if err != nil {
			return err
		}
		seg.Bytes = append([]byte(nil), b...)
		m.Data = append(m.Data, seg)
	}
	return nil
}

func decodeCodeSection(d *decoder, m *Module, typeIdxs []uint32) error {
	n, err := d.u32()
	if err != nil {
		return err
	}
	if int(n) != len(typeIdxs) {
		return fmt.Errorf("wasm: code count %d != function count %d", n, len(typeIdxs))
	}
	for i := uint32(0); i < n; i++ {
		size, err := d.u32()
		if err != nil {
			return err
		}
		body, err := d.bytes(int(size))
		if err != nil {
			return err
		}
		f := Func{TypeIdx: typeIdxs[i]}
		bd := &decoder{p: body}
		nruns, err := bd.u32()
		if err != nil {
			return err
		}
		for j := uint32(0); j < nruns; j++ {
			cnt, err := bd.u32()
			if err != nil {
				return err
			}
			t, err := bd.valtype()
			if err != nil {
				return err
			}
			if len(f.Locals)+int(cnt) > 1<<20 {
				return errors.New("wasm: too many locals")
			}
			for k := uint32(0); k < cnt; k++ {
				f.Locals = append(f.Locals, t)
			}
		}
		for !bd.eof() {
			in, err := decodeInstr(bd)
			if err != nil {
				return fmt.Errorf("wasm: func %d: %w", i, err)
			}
			f.Body = append(f.Body, in)
		}
		if len(f.Body) == 0 || f.Body[len(f.Body)-1].Op != OpEnd {
			return fmt.Errorf("wasm: func %d body not terminated by end", i)
		}
		m.Funcs = append(m.Funcs, f)
	}
	return nil
}

// decodeConstExpr reads a single constant instruction followed by end.
func decodeConstExpr(d *decoder) (Instr, error) {
	in, err := decodeInstr(d)
	if err != nil {
		return Instr{}, err
	}
	switch in.Op {
	case OpI32Const, OpI64Const, OpF32Const, OpF64Const, OpGlobalGet:
	default:
		return Instr{}, fmt.Errorf("wasm: non-constant initializer %s", OpName(in.Op))
	}
	end, err := decodeInstr(d)
	if err != nil {
		return Instr{}, err
	}
	if end.Op != OpEnd {
		return Instr{}, errors.New("wasm: initializer not terminated by end")
	}
	return in, nil
}

func decodeInstr(d *decoder) (Instr, error) {
	opb, err := d.byte()
	if err != nil {
		return Instr{}, err
	}
	in := Instr{Op: Opcode(opb)}
	if !KnownOpcode(in.Op) {
		return Instr{}, fmt.Errorf("unknown opcode 0x%02x", opb)
	}
	switch in.Op {
	case OpBlock, OpLoop, OpIf:
		bt, err := d.byte()
		if err != nil {
			return Instr{}, err
		}
		if bt != 0x40 {
			t := ValType(bt)
			if !t.Valid() {
				return Instr{}, fmt.Errorf("bad block type 0x%02x", bt)
			}
			in.Block = BlockOf(t)
		}
	case OpBr, OpBrIf, OpCall, OpLocalGet, OpLocalSet, OpLocalTee, OpGlobalGet, OpGlobalSet:
		v, err := d.u32()
		if err != nil {
			return Instr{}, err
		}
		in.I64 = int64(v)
	case OpCallIndirect:
		v, err := d.u32()
		if err != nil {
			return Instr{}, err
		}
		in.I64 = int64(v)
		tbl, err := d.byte()
		if err != nil {
			return Instr{}, err
		}
		if tbl != 0 {
			return Instr{}, errors.New("call_indirect: nonzero table index")
		}
	case OpBrTable:
		n, err := d.u32()
		if err != nil {
			return Instr{}, err
		}
		if n > 1<<20 {
			return Instr{}, errors.New("br_table too large")
		}
		in.Table = make([]uint32, 0, n+1)
		for j := uint32(0); j <= n; j++ {
			t, err := d.u32()
			if err != nil {
				return Instr{}, err
			}
			in.Table = append(in.Table, t)
		}
	case OpI32Const:
		v, err := d.int(32)
		if err != nil {
			return Instr{}, err
		}
		in.I64 = v
	case OpI64Const:
		v, err := d.int(64)
		if err != nil {
			return Instr{}, err
		}
		in.I64 = v
	case OpF32Const:
		b, err := d.bytes(4)
		if err != nil {
			return Instr{}, err
		}
		in.F64 = float64(math.Float32frombits(binary.LittleEndian.Uint32(b)))
	case OpF64Const:
		b, err := d.bytes(8)
		if err != nil {
			return Instr{}, err
		}
		in.F64 = math.Float64frombits(binary.LittleEndian.Uint64(b))
	case OpMemorySize, OpMemoryGrow:
		z, err := d.byte()
		if err != nil {
			return Instr{}, err
		}
		if z != 0 {
			return Instr{}, errors.New("memory instruction: nonzero memory index")
		}
	default:
		if in.Op.IsMemAccess() {
			if in.Align, err = d.u32(); err != nil {
				return Instr{}, err
			}
			if in.Offset, err = d.u32(); err != nil {
				return Instr{}, err
			}
		}
	}
	return in, nil
}
