package wasm

import (
	"fmt"
	"strings"
)

// Print renders the module in a WAT-like textual form for inspection and
// golden tests. It is not a strict WAT serializer.
func Print(m *Module) string {
	var sb strings.Builder
	sb.WriteString("(module\n")
	for i, t := range m.Types {
		fmt.Fprintf(&sb, "  (type %d %s)\n", i, t)
	}
	for _, im := range m.Imports {
		switch im.Kind {
		case ExternFunc:
			fmt.Fprintf(&sb, "  (import %q %q (func type=%d))\n", im.Module, im.Name, im.TypeIdx)
		case ExternMemory:
			fmt.Fprintf(&sb, "  (import %q %q (memory %d))\n", im.Module, im.Name, im.Mem.Min)
		case ExternGlobal:
			fmt.Fprintf(&sb, "  (import %q %q (global %s))\n", im.Module, im.Name, im.GlobalType.Type)
		case ExternTable:
			fmt.Fprintf(&sb, "  (import %q %q (table %d))\n", im.Module, im.Name, im.Table.Limits.Min)
		}
	}
	for _, mem := range m.Mems {
		if mem.HasMax {
			fmt.Fprintf(&sb, "  (memory %d %d)\n", mem.Min, mem.Max)
		} else {
			fmt.Fprintf(&sb, "  (memory %d)\n", mem.Min)
		}
	}
	for _, t := range m.Tables {
		fmt.Fprintf(&sb, "  (table %d funcref)\n", t.Limits.Min)
	}
	for i, g := range m.Globals {
		mut := ""
		if g.Type.Mutable {
			mut = "mut "
		}
		fmt.Fprintf(&sb, "  (global %d (%s%s) (%s))\n", m.NumImportedGlobals()+i, mut, g.Type.Type, g.Init)
	}
	nimp := m.NumImportedFuncs()
	for i := range m.Funcs {
		f := &m.Funcs[i]
		idx := uint32(nimp + i)
		ft := m.Types[f.TypeIdx]
		fmt.Fprintf(&sb, "  (func %s %s", m.FuncName(idx), ft)
		if len(f.Locals) > 0 {
			sb.WriteString(" (local")
			for _, l := range f.Locals {
				sb.WriteString(" " + l.String())
			}
			sb.WriteString(")")
		}
		sb.WriteString("\n")
		indent := 4
		for _, in := range f.Body {
			switch in.Op {
			case OpEnd, OpElse:
				indent -= 2
			}
			if indent < 4 {
				indent = 4
			}
			sb.WriteString(strings.Repeat(" ", indent))
			sb.WriteString(in.String())
			sb.WriteString("\n")
			switch in.Op {
			case OpBlock, OpLoop, OpIf, OpElse:
				indent += 2
			}
		}
		sb.WriteString("  )\n")
	}
	for _, e := range m.Exports {
		fmt.Fprintf(&sb, "  (export %q (%s %d))\n", e.Name, e.Kind, e.Index)
	}
	for _, e := range m.Elems {
		fmt.Fprintf(&sb, "  (elem (%s) %v)\n", e.Offset, e.Funcs)
	}
	for _, d := range m.Data {
		fmt.Fprintf(&sb, "  (data (%s) %d bytes)\n", d.Offset, len(d.Bytes))
	}
	sb.WriteString(")\n")
	return sb.String()
}
