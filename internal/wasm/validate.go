package wasm

import (
	"errors"
	"fmt"
)

// Validate type-checks the whole module per the WebAssembly MVP validation
// rules. It returns the first error found.
func Validate(m *Module) error {
	// Imported function type indices.
	for _, im := range m.Imports {
		if im.Kind == ExternFunc && int(im.TypeIdx) >= len(m.Types) {
			return fmt.Errorf("wasm: import %s.%s: type index %d out of range", im.Module, im.Name, im.TypeIdx)
		}
	}
	nfuncs := m.NumImportedFuncs() + len(m.Funcs)
	nglobals := m.NumImportedGlobals() + len(m.Globals)
	nmems := len(m.Mems)
	ntables := len(m.Tables)
	for _, im := range m.Imports {
		switch im.Kind {
		case ExternMemory:
			nmems++
		case ExternTable:
			ntables++
		}
	}
	if nmems > 1 {
		return errors.New("wasm: at most one memory is allowed in the MVP")
	}
	if ntables > 1 {
		return errors.New("wasm: at most one table is allowed in the MVP")
	}
	for _, mem := range m.Mems {
		if mem.Min > MaxPages || (mem.HasMax && (mem.Max > MaxPages || mem.Max < mem.Min)) {
			return errors.New("wasm: invalid memory limits")
		}
	}

	// Globals: initializers may reference only imported globals (which
	// precede all module-defined ones) and must match the declared type.
	nimp := m.NumImportedGlobals()
	for i, g := range m.Globals {
		t, err := constExprType(m, g.Init, nimp)
		if err != nil {
			return fmt.Errorf("wasm: global %d: %w", i, err)
		}
		if t != g.Type.Type {
			return fmt.Errorf("wasm: global %d: initializer type %s != declared %s", i, t, g.Type.Type)
		}
	}

	// Element segments.
	for i, e := range m.Elems {
		if int(e.TableIdx) >= ntables {
			return fmt.Errorf("wasm: elem %d: table index out of range", i)
		}
		t, err := constExprType(m, e.Offset, nimp)
		if err != nil {
			return fmt.Errorf("wasm: elem %d: %w", i, err)
		}
		if t != I32 {
			return fmt.Errorf("wasm: elem %d: offset must be i32", i)
		}
		for _, f := range e.Funcs {
			if int(f) >= nfuncs {
				return fmt.Errorf("wasm: elem %d: function index %d out of range", i, f)
			}
		}
	}

	// Data segments.
	for i, d := range m.Data {
		if int(d.MemIdx) >= nmems {
			return fmt.Errorf("wasm: data %d: memory index out of range", i)
		}
		t, err := constExprType(m, d.Offset, nimp)
		if err != nil {
			return fmt.Errorf("wasm: data %d: %w", i, err)
		}
		if t != I32 {
			return fmt.Errorf("wasm: data %d: offset must be i32", i)
		}
	}

	// Exports: indices in range, names unique.
	seen := make(map[string]bool, len(m.Exports))
	for _, e := range m.Exports {
		if seen[e.Name] {
			return fmt.Errorf("wasm: duplicate export %q", e.Name)
		}
		seen[e.Name] = true
		var limit int
		switch e.Kind {
		case ExternFunc:
			limit = nfuncs
		case ExternGlobal:
			limit = nglobals
		case ExternMemory:
			limit = nmems
		case ExternTable:
			limit = ntables
		default:
			return fmt.Errorf("wasm: export %q: bad kind", e.Name)
		}
		if int(e.Index) >= limit {
			return fmt.Errorf("wasm: export %q: index %d out of range", e.Name, e.Index)
		}
	}

	// Start function.
	if m.Start != nil {
		ft, err := m.FuncTypeAt(*m.Start)
		if err != nil {
			return err
		}
		if len(ft.Params) != 0 || len(ft.Results) != 0 {
			return errors.New("wasm: start function must have type () -> ()")
		}
	}

	// Function bodies.
	for i := range m.Funcs {
		if int(m.Funcs[i].TypeIdx) >= len(m.Types) {
			return fmt.Errorf("wasm: func %d: type index out of range", i)
		}
		if err := validateBody(m, &m.Funcs[i], nfuncs, nglobals, nmems, ntables); err != nil {
			return fmt.Errorf("wasm: func %d (%s): %w", i, m.FuncName(uint32(m.NumImportedFuncs()+i)), err)
		}
	}
	return nil
}

func constExprType(m *Module, in Instr, nimportedGlobals int) (ValType, error) {
	switch in.Op {
	case OpI32Const:
		return I32, nil
	case OpI64Const:
		return I64, nil
	case OpF32Const:
		return F32, nil
	case OpF64Const:
		return F64, nil
	case OpGlobalGet:
		if int(in.I64) >= nimportedGlobals {
			return 0, errors.New("initializer may only reference imported globals")
		}
		gt, err := m.GlobalTypeAt(uint32(in.I64))
		if err != nil {
			return 0, err
		}
		if gt.Mutable {
			return 0, errors.New("initializer may only reference immutable globals")
		}
		return gt.Type, nil
	}
	return 0, fmt.Errorf("non-constant initializer %s", OpName(in.Op))
}

// unknownType marks a polymorphic stack slot that appears in unreachable code.
const unknownType ValType = 0

type ctrlFrame struct {
	op          Opcode // block, loop, if, or 0 for the function frame
	results     []ValType
	stackHeight int
	unreachable bool
	sawElse     bool
}

type validator struct {
	m        *Module
	stack    []ValType
	ctrls    []ctrlFrame
	locals   []ValType
	nfuncs   int
	nglobals int
	nmems    int
	ntables  int
}

func (v *validator) push(t ValType) { v.stack = append(v.stack, t) }

func (v *validator) pop(expect ValType) (ValType, error) {
	fr := &v.ctrls[len(v.ctrls)-1]
	if len(v.stack) == fr.stackHeight {
		if fr.unreachable {
			return expect, nil
		}
		return 0, fmt.Errorf("stack underflow, wanted %s", typeName(expect))
	}
	t := v.stack[len(v.stack)-1]
	v.stack = v.stack[:len(v.stack)-1]
	if expect != unknownType && t != unknownType && t != expect {
		return 0, fmt.Errorf("type mismatch: got %s, wanted %s", t, expect)
	}
	if t == unknownType {
		return expect, nil
	}
	return t, nil
}

func typeName(t ValType) string {
	if t == unknownType {
		return "any"
	}
	return t.String()
}

func (v *validator) pushCtrl(op Opcode, results []ValType) {
	v.ctrls = append(v.ctrls, ctrlFrame{op: op, results: results, stackHeight: len(v.stack)})
}

func (v *validator) popCtrl() (ctrlFrame, error) {
	if len(v.ctrls) == 0 {
		return ctrlFrame{}, errors.New("control stack underflow")
	}
	fr := v.ctrls[len(v.ctrls)-1]
	// The block's results must be on the stack.
	for i := len(fr.results) - 1; i >= 0; i-- {
		if _, err := v.pop(fr.results[i]); err != nil {
			return fr, fmt.Errorf("at block end: %w", err)
		}
	}
	if len(v.stack) != fr.stackHeight {
		return fr, fmt.Errorf("%d leftover values at block end", len(v.stack)-fr.stackHeight)
	}
	v.ctrls = v.ctrls[:len(v.ctrls)-1]
	return fr, nil
}

// labelTypes returns the types a branch to the frame must supply: the result
// types for blocks/ifs, and nothing for loops (branches to a loop re-enter it).
func (fr *ctrlFrame) labelTypes() []ValType {
	if fr.op == OpLoop {
		return nil
	}
	return fr.results
}

func (v *validator) markUnreachable() {
	fr := &v.ctrls[len(v.ctrls)-1]
	v.stack = v.stack[:fr.stackHeight]
	fr.unreachable = true
}

func (v *validator) branchTo(depth int64) (*ctrlFrame, error) {
	if depth < 0 || int(depth) >= len(v.ctrls) {
		return nil, fmt.Errorf("branch depth %d out of range", depth)
	}
	return &v.ctrls[len(v.ctrls)-1-int(depth)], nil
}

func validateBody(m *Module, f *Func, nfuncs, nglobals, nmems, ntables int) error {
	ft := m.Types[f.TypeIdx]
	v := &validator{
		m: m, nfuncs: nfuncs, nglobals: nglobals, nmems: nmems, ntables: ntables,
		locals: append(append([]ValType{}, ft.Params...), f.Locals...),
	}
	v.pushCtrl(0, ft.Results)
	for pc, in := range f.Body {
		if len(v.ctrls) == 0 {
			return fmt.Errorf("pc %d: instruction after function end", pc)
		}
		if err := v.step(in); err != nil {
			return fmt.Errorf("pc %d (%s): %w", pc, in, err)
		}
	}
	if len(v.ctrls) != 0 {
		return errors.New("missing end: control stack not empty at function end")
	}
	return nil
}

func (v *validator) step(in Instr) error {
	op := in.Op
	switch op {
	case OpNop:
	case OpUnreachable:
		v.markUnreachable()
	case OpBlock, OpLoop:
		var res []ValType
		if in.Block.HasResult {
			res = []ValType{in.Block.Result}
		}
		v.pushCtrl(op, res)
	case OpIf:
		if _, err := v.pop(I32); err != nil {
			return err
		}
		var res []ValType
		if in.Block.HasResult {
			res = []ValType{in.Block.Result}
		}
		v.pushCtrl(op, res)
	case OpElse:
		fr, err := v.popCtrl()
		if err != nil {
			return err
		}
		if fr.op != OpIf || fr.sawElse {
			return errors.New("else without matching if")
		}
		v.pushCtrl(OpIf, fr.results)
		v.ctrls[len(v.ctrls)-1].sawElse = true
	case OpEnd:
		fr, err := v.popCtrl()
		if err != nil {
			return err
		}
		// An if with a result but no else is invalid: the implicit else
		// cannot produce the result.
		if fr.op == OpIf && !fr.sawElse && len(fr.results) > 0 {
			return errors.New("if with result type requires an else branch")
		}
		for _, t := range fr.results {
			v.push(t)
		}
	case OpBr:
		fr, err := v.branchTo(in.I64)
		if err != nil {
			return err
		}
		lt := fr.labelTypes()
		for i := len(lt) - 1; i >= 0; i-- {
			if _, err := v.pop(lt[i]); err != nil {
				return err
			}
		}
		v.markUnreachable()
	case OpBrIf:
		if _, err := v.pop(I32); err != nil {
			return err
		}
		fr, err := v.branchTo(in.I64)
		if err != nil {
			return err
		}
		lt := fr.labelTypes()
		for i := len(lt) - 1; i >= 0; i-- {
			if _, err := v.pop(lt[i]); err != nil {
				return err
			}
		}
		for _, t := range lt {
			v.push(t)
		}
	case OpBrTable:
		if _, err := v.pop(I32); err != nil {
			return err
		}
		if len(in.Table) == 0 {
			return errors.New("empty br_table")
		}
		def, err := v.branchTo(int64(in.Table[len(in.Table)-1]))
		if err != nil {
			return err
		}
		defTypes := def.labelTypes()
		for _, tgt := range in.Table[:len(in.Table)-1] {
			fr, err := v.branchTo(int64(tgt))
			if err != nil {
				return err
			}
			lt := fr.labelTypes()
			if len(lt) != len(defTypes) {
				return errors.New("br_table targets have inconsistent arity")
			}
			for i := range lt {
				if lt[i] != defTypes[i] {
					return errors.New("br_table targets have inconsistent types")
				}
			}
		}
		for i := len(defTypes) - 1; i >= 0; i-- {
			if _, err := v.pop(defTypes[i]); err != nil {
				return err
			}
		}
		v.markUnreachable()
	case OpReturn:
		res := v.ctrls[0].results
		for i := len(res) - 1; i >= 0; i-- {
			if _, err := v.pop(res[i]); err != nil {
				return err
			}
		}
		v.markUnreachable()
	case OpCall:
		if int(in.I64) >= v.nfuncs {
			return fmt.Errorf("call target %d out of range", in.I64)
		}
		ft, err := v.m.FuncTypeAt(uint32(in.I64))
		if err != nil {
			return err
		}
		return v.applyCall(ft)
	case OpCallIndirect:
		if v.ntables == 0 {
			return errors.New("call_indirect without a table")
		}
		if int(in.I64) >= len(v.m.Types) {
			return fmt.Errorf("call_indirect type %d out of range", in.I64)
		}
		if _, err := v.pop(I32); err != nil {
			return err
		}
		return v.applyCall(v.m.Types[in.I64])
	case OpDrop:
		_, err := v.pop(unknownType)
		return err
	case OpSelect:
		if _, err := v.pop(I32); err != nil {
			return err
		}
		t1, err := v.pop(unknownType)
		if err != nil {
			return err
		}
		t2, err := v.pop(t1)
		if err != nil {
			return err
		}
		if t2 == unknownType {
			t2 = t1
		}
		v.push(t2)
	case OpLocalGet, OpLocalSet, OpLocalTee:
		if int(in.I64) >= len(v.locals) {
			return fmt.Errorf("local %d out of range", in.I64)
		}
		t := v.locals[in.I64]
		switch op {
		case OpLocalGet:
			v.push(t)
		case OpLocalSet:
			_, err := v.pop(t)
			return err
		case OpLocalTee:
			if _, err := v.pop(t); err != nil {
				return err
			}
			v.push(t)
		}
	case OpGlobalGet, OpGlobalSet:
		if int(in.I64) >= v.nglobals {
			return fmt.Errorf("global %d out of range", in.I64)
		}
		gt, err := v.m.GlobalTypeAt(uint32(in.I64))
		if err != nil {
			return err
		}
		if op == OpGlobalGet {
			v.push(gt.Type)
		} else {
			if !gt.Mutable {
				return fmt.Errorf("global %d is immutable", in.I64)
			}
			_, err := v.pop(gt.Type)
			return err
		}
	case OpMemorySize:
		if v.nmems == 0 {
			return errors.New("memory.size without a memory")
		}
		v.push(I32)
	case OpMemoryGrow:
		if v.nmems == 0 {
			return errors.New("memory.grow without a memory")
		}
		if _, err := v.pop(I32); err != nil {
			return err
		}
		v.push(I32)
	case OpI32Const:
		v.push(I32)
	case OpI64Const:
		v.push(I64)
	case OpF32Const:
		v.push(F32)
	case OpF64Const:
		v.push(F64)
	default:
		if op.IsMemAccess() {
			if v.nmems == 0 {
				return errors.New("memory access without a memory")
			}
			sz := op.MemAccessBytes()
			if in.Align > 16 || (1<<in.Align) > sz {
				return fmt.Errorf("alignment 2^%d larger than access size %d", in.Align, sz)
			}
			if op.IsLoad() {
				if _, err := v.pop(I32); err != nil {
					return err
				}
				v.push(memAccessType(op))
				return nil
			}
			if _, err := v.pop(memAccessType(op)); err != nil {
				return err
			}
			_, err := v.pop(I32)
			return err
		}
		sig, ok := numericSigs[op]
		if !ok {
			return fmt.Errorf("unhandled opcode %s", OpName(op))
		}
		for i := len(sig.in) - 1; i >= 0; i-- {
			if _, err := v.pop(sig.in[i]); err != nil {
				return err
			}
		}
		v.push(sig.out)
	}
	return nil
}

func (v *validator) applyCall(ft FuncType) error {
	for i := len(ft.Params) - 1; i >= 0; i-- {
		if _, err := v.pop(ft.Params[i]); err != nil {
			return err
		}
	}
	for _, r := range ft.Results {
		v.push(r)
	}
	return nil
}

// memAccessType returns the value type read or written by a load/store.
func memAccessType(op Opcode) ValType {
	switch op {
	case OpI32Load, OpI32Load8S, OpI32Load8U, OpI32Load16S, OpI32Load16U,
		OpI32Store, OpI32Store8, OpI32Store16:
		return I32
	case OpI64Load, OpI64Load8S, OpI64Load8U, OpI64Load16S, OpI64Load16U,
		OpI64Load32S, OpI64Load32U, OpI64Store, OpI64Store8, OpI64Store16, OpI64Store32:
		return I64
	case OpF32Load, OpF32Store:
		return F32
	case OpF64Load, OpF64Store:
		return F64
	}
	panic("not a memory access: " + OpName(op))
}

type numSig struct {
	in  []ValType
	out ValType
}

var numericSigs = map[Opcode]numSig{}

func init() {
	bin := func(t ValType, out ValType, ops ...Opcode) {
		for _, op := range ops {
			numericSigs[op] = numSig{in: []ValType{t, t}, out: out}
		}
	}
	un := func(t ValType, out ValType, ops ...Opcode) {
		for _, op := range ops {
			numericSigs[op] = numSig{in: []ValType{t}, out: out}
		}
	}
	// i32
	un(I32, I32, OpI32Eqz, OpI32Clz, OpI32Ctz, OpI32Popcnt)
	bin(I32, I32, OpI32Eq, OpI32Ne, OpI32LtS, OpI32LtU, OpI32GtS, OpI32GtU,
		OpI32LeS, OpI32LeU, OpI32GeS, OpI32GeU,
		OpI32Add, OpI32Sub, OpI32Mul, OpI32DivS, OpI32DivU, OpI32RemS, OpI32RemU,
		OpI32And, OpI32Or, OpI32Xor, OpI32Shl, OpI32ShrS, OpI32ShrU, OpI32Rotl, OpI32Rotr)
	// i64
	un(I64, I32, OpI64Eqz)
	un(I64, I64, OpI64Clz, OpI64Ctz, OpI64Popcnt)
	bin(I64, I32, OpI64Eq, OpI64Ne, OpI64LtS, OpI64LtU, OpI64GtS, OpI64GtU,
		OpI64LeS, OpI64LeU, OpI64GeS, OpI64GeU)
	bin(I64, I64, OpI64Add, OpI64Sub, OpI64Mul, OpI64DivS, OpI64DivU, OpI64RemS, OpI64RemU,
		OpI64And, OpI64Or, OpI64Xor, OpI64Shl, OpI64ShrS, OpI64ShrU, OpI64Rotl, OpI64Rotr)
	// f32
	bin(F32, I32, OpF32Eq, OpF32Ne, OpF32Lt, OpF32Gt, OpF32Le, OpF32Ge)
	un(F32, F32, OpF32Abs, OpF32Neg, OpF32Ceil, OpF32Floor, OpF32Trunc, OpF32Nearest, OpF32Sqrt)
	bin(F32, F32, OpF32Add, OpF32Sub, OpF32Mul, OpF32Div, OpF32Min, OpF32Max, OpF32Copysign)
	// f64
	bin(F64, I32, OpF64Eq, OpF64Ne, OpF64Lt, OpF64Gt, OpF64Le, OpF64Ge)
	un(F64, F64, OpF64Abs, OpF64Neg, OpF64Ceil, OpF64Floor, OpF64Trunc, OpF64Nearest, OpF64Sqrt)
	bin(F64, F64, OpF64Add, OpF64Sub, OpF64Mul, OpF64Div, OpF64Min, OpF64Max, OpF64Copysign)
	// conversions
	un(I64, I32, OpI32WrapI64)
	un(F32, I32, OpI32TruncF32S, OpI32TruncF32U)
	un(F64, I32, OpI32TruncF64S, OpI32TruncF64U)
	un(I32, I64, OpI64ExtendI32S, OpI64ExtendI32U)
	un(F32, I64, OpI64TruncF32S, OpI64TruncF32U)
	un(F64, I64, OpI64TruncF64S, OpI64TruncF64U)
	un(I32, F32, OpF32ConvertI32S, OpF32ConvertI32U)
	un(I64, F32, OpF32ConvertI64S, OpF32ConvertI64U)
	un(F64, F32, OpF32DemoteF64)
	un(I32, F64, OpF64ConvertI32S, OpF64ConvertI32U)
	un(I64, F64, OpF64ConvertI64S, OpF64ConvertI64U)
	un(F32, F64, OpF64PromoteF32)
	un(F32, I32, OpI32ReinterpretF32)
	un(F64, I64, OpI64ReinterpretF64)
	un(I32, F32, OpF32ReinterpretI32)
	un(I64, F64, OpF64ReinterpretI64)
}
