// Package wasm implements the WebAssembly MVP: the module AST, the binary
// format (encoding and decoding), a spec-style validator, a reference
// stack-machine interpreter, and a convenience builder API.
//
// The package is the substrate of the reproduction: workloads are lowered to
// real Wasm bytecode (by internal/minic or the builder), validated, and then
// either interpreted (reference semantics) or compiled by internal/codegen's
// modeled browser and native backends.
package wasm

import "fmt"

// ValType is a WebAssembly value type.
type ValType byte

// Value types, with their binary encodings.
const (
	I32 ValType = 0x7f
	I64 ValType = 0x7e
	F32 ValType = 0x7d
	F64 ValType = 0x7c
)

func (t ValType) String() string {
	switch t {
	case I32:
		return "i32"
	case I64:
		return "i64"
	case F32:
		return "f32"
	case F64:
		return "f64"
	}
	return fmt.Sprintf("valtype(0x%02x)", byte(t))
}

// Valid reports whether t is one of the four MVP value types.
func (t ValType) Valid() bool {
	return t == I32 || t == I64 || t == F32 || t == F64
}

// IsFloat reports whether t is a floating-point type.
func (t ValType) IsFloat() bool { return t == F32 || t == F64 }

// FuncType is a function signature.
type FuncType struct {
	Params  []ValType
	Results []ValType
}

func (ft FuncType) String() string {
	s := "("
	for i, p := range ft.Params {
		if i > 0 {
			s += " "
		}
		s += p.String()
	}
	s += ") -> ("
	for i, r := range ft.Results {
		if i > 0 {
			s += " "
		}
		s += r.String()
	}
	return s + ")"
}

// Equal reports whether two function types are identical.
func (ft FuncType) Equal(o FuncType) bool {
	if len(ft.Params) != len(o.Params) || len(ft.Results) != len(o.Results) {
		return false
	}
	for i := range ft.Params {
		if ft.Params[i] != o.Params[i] {
			return false
		}
	}
	for i := range ft.Results {
		if ft.Results[i] != o.Results[i] {
			return false
		}
	}
	return true
}

// Limits bound the size of a memory or table, in pages or entries.
type Limits struct {
	Min    uint32
	Max    uint32
	HasMax bool
}

// PageSize is the WebAssembly linear-memory page size in bytes.
const PageSize = 65536

// MaxPages is the maximum number of linear-memory pages (4 GiB).
const MaxPages = 65536

// GlobalType describes a global variable's type and mutability.
type GlobalType struct {
	Type    ValType
	Mutable bool
}

// BlockType is the result arity of a block/loop/if. The MVP allows either no
// result or exactly one value type.
type BlockType struct {
	HasResult bool
	Result    ValType
}

// BlockVoid is the empty block type.
var BlockVoid = BlockType{}

// BlockOf returns a block type producing one value of type t.
func BlockOf(t ValType) BlockType { return BlockType{HasResult: true, Result: t} }

func (bt BlockType) String() string {
	if !bt.HasResult {
		return "void"
	}
	return bt.Result.String()
}

// ExternKind identifies the namespace of an import or export.
type ExternKind byte

// Extern kinds, with their binary encodings.
const (
	ExternFunc   ExternKind = 0
	ExternTable  ExternKind = 1
	ExternMemory ExternKind = 2
	ExternGlobal ExternKind = 3
)

func (k ExternKind) String() string {
	switch k {
	case ExternFunc:
		return "func"
	case ExternTable:
		return "table"
	case ExternMemory:
		return "memory"
	case ExternGlobal:
		return "global"
	}
	return fmt.Sprintf("externkind(%d)", byte(k))
}
