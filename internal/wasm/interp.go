package wasm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// Trap is a WebAssembly runtime trap.
type Trap struct{ Msg string }

func (t *Trap) Error() string { return "wasm trap: " + t.Msg }

func trap(format string, args ...any) error {
	return &Trap{Msg: fmt.Sprintf(format, args...)}
}

// HostFunc is a native function provided to a module through imports.
// Arguments and results are passed as raw 64-bit patterns (i32 zero-extended,
// floats as IEEE bits).
type HostFunc struct {
	Type FuncType
	Fn   func(inst *Instance, args []uint64) ([]uint64, error)
}

// Imports resolves a module's imports: Funcs maps "module.name" keys, and
// Globals maps the same keys to initial values of immutable globals.
type Imports struct {
	Funcs   map[string]HostFunc
	Globals map[string]uint64
	// Memory, if non-nil, satisfies a memory import.
	Memory *Memory
}

// Memory is a linear memory instance.
type Memory struct {
	Bytes []byte
	Max   uint32 // in pages; 0 means MaxPages
}

// NewMemory allocates a linear memory with min pages.
func NewMemory(min, max uint32) *Memory {
	if max == 0 {
		max = MaxPages
	}
	return &Memory{Bytes: make([]byte, int(min)*PageSize), Max: max}
}

// Pages returns the current size in 64 KiB pages.
func (m *Memory) Pages() uint32 { return uint32(len(m.Bytes) / PageSize) }

// Grow adds delta pages, returning the previous page count or -1 on failure.
func (m *Memory) Grow(delta uint32) int32 {
	old := m.Pages()
	if uint64(old)+uint64(delta) > uint64(m.Max) {
		return -1
	}
	m.Bytes = append(m.Bytes, make([]byte, int(delta)*PageSize)...)
	return int32(old)
}

// funcKind distinguishes module functions from host functions in the unified
// function index space.
type instFunc struct {
	host  *HostFunc
	def   *Func // nil for host funcs
	typ   FuncType
	index uint32
}

// Instance is an instantiated module ready for execution.
type Instance struct {
	Module  *Module
	Mem     *Memory
	Globals []uint64
	Table   []int32 // function indices; -1 = null
	funcs   []instFunc

	// Depth limits recursion. Steps counts executed instructions (fuel);
	// execution traps if it exceeds MaxSteps when MaxSteps > 0.
	MaxDepth int
	MaxSteps uint64
	Steps    uint64

	// sidetables per module-defined function, lazily built.
	side map[*Func]*sidetable
}

// Instantiate links and initializes a validated module.
func Instantiate(m *Module, imp *Imports) (*Instance, error) {
	inst := &Instance{Module: m, MaxDepth: 2048, side: make(map[*Func]*sidetable)}

	// Build function index space: imports first.
	for _, im := range m.Imports {
		switch im.Kind {
		case ExternFunc:
			key := im.Module + "." + im.Name
			var hf HostFunc
			if imp != nil {
				if f, ok := imp.Funcs[key]; ok {
					hf = f
				}
			}
			if hf.Fn == nil {
				return nil, fmt.Errorf("wasm: unresolved function import %q", key)
			}
			want := m.Types[im.TypeIdx]
			if !hf.Type.Equal(want) {
				return nil, fmt.Errorf("wasm: import %q signature %s does not match %s", key, hf.Type, want)
			}
			h := hf
			inst.funcs = append(inst.funcs, instFunc{host: &h, typ: want, index: uint32(len(inst.funcs))})
		case ExternMemory:
			if imp == nil || imp.Memory == nil {
				return nil, fmt.Errorf("wasm: unresolved memory import %s.%s", im.Module, im.Name)
			}
			inst.Mem = imp.Memory
		case ExternGlobal:
			key := im.Module + "." + im.Name
			var v uint64
			if imp != nil {
				v = imp.Globals[key]
			}
			inst.Globals = append(inst.Globals, v)
		case ExternTable:
			inst.Table = make([]int32, im.Table.Limits.Min)
			for i := range inst.Table {
				inst.Table[i] = -1
			}
		}
	}
	for i := range m.Funcs {
		f := &m.Funcs[i]
		inst.funcs = append(inst.funcs, instFunc{
			def: f, typ: m.Types[f.TypeIdx], index: uint32(len(inst.funcs)),
		})
	}

	// Memory.
	if inst.Mem == nil && len(m.Mems) > 0 {
		lim := m.Mems[0]
		max := lim.Max
		if !lim.HasMax {
			max = MaxPages
		}
		inst.Mem = NewMemory(lim.Min, max)
	}

	// Globals (module-defined, after imported).
	for _, g := range m.Globals {
		v, err := inst.evalConst(g.Init)
		if err != nil {
			return nil, err
		}
		inst.Globals = append(inst.Globals, v)
	}

	// Table.
	if inst.Table == nil && len(m.Tables) > 0 {
		inst.Table = make([]int32, m.Tables[0].Limits.Min)
		for i := range inst.Table {
			inst.Table[i] = -1
		}
	}
	for _, e := range m.Elems {
		off, err := inst.evalConst(e.Offset)
		if err != nil {
			return nil, err
		}
		o := int(int32(off))
		if o < 0 || o+len(e.Funcs) > len(inst.Table) {
			return nil, errors.New("wasm: element segment out of bounds")
		}
		for i, fidx := range e.Funcs {
			inst.Table[o+i] = int32(fidx)
		}
	}

	// Data.
	for _, d := range m.Data {
		off, err := inst.evalConst(d.Offset)
		if err != nil {
			return nil, err
		}
		o := int(int32(off))
		if inst.Mem == nil || o < 0 || o+len(d.Bytes) > len(inst.Mem.Bytes) {
			return nil, errors.New("wasm: data segment out of bounds")
		}
		copy(inst.Mem.Bytes[o:], d.Bytes)
	}

	// Start function.
	if m.Start != nil {
		if _, err := inst.call(*m.Start, nil, 0); err != nil {
			return nil, err
		}
	}
	return inst, nil
}

func (inst *Instance) evalConst(in Instr) (uint64, error) {
	switch in.Op {
	case OpI32Const:
		return uint64(uint32(int32(in.I64))), nil
	case OpI64Const:
		return uint64(in.I64), nil
	case OpF32Const:
		return uint64(math.Float32bits(float32(in.F64))), nil
	case OpF64Const:
		return math.Float64bits(in.F64), nil
	case OpGlobalGet:
		if int(in.I64) >= len(inst.Globals) {
			return 0, errors.New("wasm: bad global in const expr")
		}
		return inst.Globals[in.I64], nil
	}
	return 0, fmt.Errorf("wasm: non-constant expr %s", OpName(in.Op))
}

// Invoke calls the exported function name with the given arguments.
func (inst *Instance) Invoke(name string, args ...uint64) ([]uint64, error) {
	idx, ok := inst.Module.ExportedFunc(name)
	if !ok {
		return nil, fmt.Errorf("wasm: no exported function %q", name)
	}
	return inst.call(idx, args, 0)
}

// CallFunc calls the function at index idx in the import-space.
func (inst *Instance) CallFunc(idx uint32, args ...uint64) ([]uint64, error) {
	return inst.call(idx, args, 0)
}

// sidetable maps structured-control pcs to jump targets.
type sidetable struct {
	// matchEnd[pc] = pc of the matching end for block/loop/if at pc.
	matchEnd map[int]int
	// matchElse[pc] = pc of else for if at pc (or -1).
	matchElse map[int]int
}

func buildSidetable(f *Func) (*sidetable, error) {
	st := &sidetable{matchEnd: map[int]int{}, matchElse: map[int]int{}}
	var stack []int
	for pc, in := range f.Body {
		switch in.Op {
		case OpBlock, OpLoop, OpIf:
			stack = append(stack, pc)
			if in.Op == OpIf {
				st.matchElse[pc] = -1
			}
		case OpElse:
			if len(stack) == 0 {
				return nil, errors.New("wasm: else without if")
			}
			st.matchElse[stack[len(stack)-1]] = pc
		case OpEnd:
			if len(stack) == 0 {
				// Function-terminating end.
				continue
			}
			open := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			st.matchEnd[open] = pc
		}
	}
	if len(stack) != 0 {
		return nil, errors.New("wasm: unterminated block")
	}
	return st, nil
}

func (inst *Instance) sidetableFor(f *Func) (*sidetable, error) {
	if st, ok := inst.side[f]; ok {
		return st, nil
	}
	st, err := buildSidetable(f)
	if err != nil {
		return nil, err
	}
	inst.side[f] = st
	return st, nil
}

// frame label for control flow.
type label struct {
	op      Opcode
	pc      int // pc of the block/loop/if instruction (function frame: -1)
	arity   int // values a branch carries
	sp      int // operand stack height at entry
	sawElse bool
}

func (inst *Instance) call(idx uint32, args []uint64, depth int) ([]uint64, error) {
	if depth > inst.MaxDepth {
		return nil, trap("call stack exhausted")
	}
	if int(idx) >= len(inst.funcs) {
		return nil, trap("function index %d out of range", idx)
	}
	fn := &inst.funcs[idx]
	if len(args) != len(fn.typ.Params) {
		return nil, fmt.Errorf("wasm: call %d: got %d args, want %d", idx, len(args), len(fn.typ.Params))
	}
	if fn.host != nil {
		return fn.host.Fn(inst, args)
	}
	f := fn.def
	st, err := inst.sidetableFor(f)
	if err != nil {
		return nil, err
	}

	locals := make([]uint64, len(fn.typ.Params)+len(f.Locals))
	copy(locals, args)
	var stack []uint64
	labels := []label{{op: 0, pc: -1, arity: len(fn.typ.Results), sp: 0}}

	push := func(v uint64) { stack = append(stack, v) }
	pop := func() uint64 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}

	mem := inst.Mem
	body := f.Body
	pc := 0

	// branch performs a br to relative depth d from position pc; returns new pc.
	branch := func(d int, pc int) (int, error) {
		li := len(labels) - 1 - d
		if li < 0 {
			return 0, trap("branch depth out of range")
		}
		l := labels[li]
		if l.pc == -1 {
			// Branch to function frame = return.
			return len(body), nil
		}
		// Carry l.arity values, discard the rest down to l.sp.
		carried := make([]uint64, l.arity)
		copy(carried, stack[len(stack)-l.arity:])
		stack = stack[:l.sp]
		labels = labels[:li+1]
		if l.op == OpLoop {
			// Re-enter the loop: branch target is the loop header.
			return l.pc + 1, nil
		}
		stack = append(stack, carried...)
		labels = labels[:li]
		return st.matchEnd[l.pc] + 1, nil
	}

	for pc < len(body) {
		inst.Steps++
		if inst.MaxSteps > 0 && inst.Steps > inst.MaxSteps {
			return nil, trap("interpreter fuel exhausted")
		}
		in := &body[pc]
		switch in.Op {
		case OpNop:
		case OpUnreachable:
			return nil, trap("unreachable executed")
		case OpBlock:
			arity := 0
			if in.Block.HasResult {
				arity = 1
			}
			labels = append(labels, label{op: OpBlock, pc: pc, arity: arity, sp: len(stack)})
		case OpLoop:
			// A branch to a loop carries no values (MVP loops have no params).
			labels = append(labels, label{op: OpLoop, pc: pc, arity: 0, sp: len(stack)})
		case OpIf:
			arity := 0
			if in.Block.HasResult {
				arity = 1
			}
			c := pop()
			labels = append(labels, label{op: OpIf, pc: pc, arity: arity, sp: len(stack)})
			if uint32(c) == 0 {
				if e := st.matchElse[pc]; e >= 0 {
					pc = e + 1
					continue
				}
				// No else: jump past end, popping the label.
				labels = labels[:len(labels)-1]
				pc = st.matchEnd[pc] + 1
				continue
			}
		case OpElse:
			// Falling into else means the then-branch finished: jump to end.
			l := labels[len(labels)-1]
			labels = labels[:len(labels)-1]
			pc = st.matchEnd[l.pc] + 1
			continue
		case OpEnd:
			if len(labels) > 1 {
				labels = labels[:len(labels)-1]
			}
		case OpBr:
			np, err := branch(int(in.I64), pc)
			if err != nil {
				return nil, err
			}
			pc = np
			continue
		case OpBrIf:
			if uint32(pop()) != 0 {
				np, err := branch(int(in.I64), pc)
				if err != nil {
					return nil, err
				}
				pc = np
				continue
			}
		case OpBrTable:
			i := uint32(pop())
			var d uint32
			if int(i) < len(in.Table)-1 {
				d = in.Table[i]
			} else {
				d = in.Table[len(in.Table)-1]
			}
			np, err := branch(int(d), pc)
			if err != nil {
				return nil, err
			}
			pc = np
			continue
		case OpReturn:
			res := make([]uint64, len(fn.typ.Results))
			copy(res, stack[len(stack)-len(res):])
			return res, nil
		case OpCall:
			callee := uint32(in.I64)
			ft := inst.funcs[callee].typ
			nargs := len(ft.Params)
			cargs := make([]uint64, nargs)
			copy(cargs, stack[len(stack)-nargs:])
			stack = stack[:len(stack)-nargs]
			res, err := inst.call(callee, cargs, depth+1)
			if err != nil {
				return nil, err
			}
			stack = append(stack, res...)
		case OpCallIndirect:
			ti := pop()
			if int(ti) >= len(inst.Table) || int32(ti) < 0 {
				return nil, trap("call_indirect: table index %d out of bounds", int32(ti))
			}
			fidx := inst.Table[ti]
			if fidx < 0 {
				return nil, trap("call_indirect: null table entry %d", ti)
			}
			want := inst.Module.Types[in.I64]
			got := inst.funcs[fidx].typ
			if !got.Equal(want) {
				return nil, trap("call_indirect: signature mismatch at table[%d]", ti)
			}
			nargs := len(want.Params)
			cargs := make([]uint64, nargs)
			copy(cargs, stack[len(stack)-nargs:])
			stack = stack[:len(stack)-nargs]
			res, err := inst.call(uint32(fidx), cargs, depth+1)
			if err != nil {
				return nil, err
			}
			stack = append(stack, res...)
		case OpDrop:
			pop()
		case OpSelect:
			c := uint32(pop())
			b := pop()
			a := pop()
			if c != 0 {
				push(a)
			} else {
				push(b)
			}
		case OpLocalGet:
			push(locals[in.I64])
		case OpLocalSet:
			locals[in.I64] = pop()
		case OpLocalTee:
			locals[in.I64] = stack[len(stack)-1]
		case OpGlobalGet:
			push(inst.Globals[in.I64])
		case OpGlobalSet:
			inst.Globals[in.I64] = pop()
		case OpMemorySize:
			push(uint64(mem.Pages()))
		case OpMemoryGrow:
			d := uint32(pop())
			push(uint64(uint32(mem.Grow(d))))
		case OpI32Const:
			push(uint64(uint32(int32(in.I64))))
		case OpI64Const:
			push(uint64(in.I64))
		case OpF32Const:
			push(uint64(math.Float32bits(float32(in.F64))))
		case OpF64Const:
			push(math.Float64bits(in.F64))
		default:
			if in.Op.IsMemAccess() {
				if err := inst.memAccess(in, &stack); err != nil {
					return nil, err
				}
			} else if err := evalNumeric(in.Op, &stack); err != nil {
				return nil, err
			}
		}
		pc++
	}
	res := make([]uint64, len(fn.typ.Results))
	copy(res, stack[len(stack)-len(res):])
	return res, nil
}

func (inst *Instance) memAccess(in *Instr, stack *[]uint64) error {
	s := *stack
	mem := inst.Mem.Bytes
	sz := in.Op.MemAccessBytes()
	if in.Op.IsLoad() {
		addr := uint64(uint32(s[len(s)-1])) + uint64(in.Offset)
		if addr+uint64(sz) > uint64(len(mem)) {
			return trap("out-of-bounds load at 0x%x", addr)
		}
		var v uint64
		switch in.Op {
		case OpI32Load, OpF32Load:
			v = uint64(binary.LittleEndian.Uint32(mem[addr:]))
		case OpI64Load, OpF64Load:
			v = binary.LittleEndian.Uint64(mem[addr:])
		case OpI32Load8U, OpI64Load8U:
			v = uint64(mem[addr])
		case OpI32Load8S, OpI64Load8S:
			v = uint64(int64(int8(mem[addr])))
		case OpI32Load16U, OpI64Load16U:
			v = uint64(binary.LittleEndian.Uint16(mem[addr:]))
		case OpI32Load16S, OpI64Load16S:
			v = uint64(int64(int16(binary.LittleEndian.Uint16(mem[addr:]))))
		case OpI64Load32U:
			v = uint64(binary.LittleEndian.Uint32(mem[addr:]))
		case OpI64Load32S:
			v = uint64(int64(int32(binary.LittleEndian.Uint32(mem[addr:]))))
		}
		if in.Op == OpI32Load8S || in.Op == OpI32Load16S {
			v = uint64(uint32(v)) // truncate sign-extension to 32 bits
		}
		s[len(s)-1] = v
		return nil
	}
	v := s[len(s)-1]
	addr := uint64(uint32(s[len(s)-2])) + uint64(in.Offset)
	*stack = s[:len(s)-2]
	if addr+uint64(sz) > uint64(len(mem)) {
		return trap("out-of-bounds store at 0x%x", addr)
	}
	switch in.Op {
	case OpI32Store, OpF32Store, OpI64Store32:
		binary.LittleEndian.PutUint32(mem[addr:], uint32(v))
	case OpI64Store, OpF64Store:
		binary.LittleEndian.PutUint64(mem[addr:], v)
	case OpI32Store8, OpI64Store8:
		mem[addr] = byte(v)
	case OpI32Store16, OpI64Store16:
		binary.LittleEndian.PutUint16(mem[addr:], uint16(v))
	}
	return nil
}

func evalNumeric(op Opcode, stack *[]uint64) error {
	s := *stack
	pop := func() uint64 {
		v := s[len(s)-1]
		s = s[:len(s)-1]
		return v
	}
	push := func(v uint64) { s = append(s, v) }
	b32 := func(v bool) uint64 {
		if v {
			return 1
		}
		return 0
	}

	switch op {
	// ---- i32 ----
	case OpI32Eqz:
		push(b32(uint32(pop()) == 0))
	case OpI32Eq, OpI32Ne, OpI32LtS, OpI32LtU, OpI32GtS, OpI32GtU, OpI32LeS, OpI32LeU, OpI32GeS, OpI32GeU:
		y, x := uint32(pop()), uint32(pop())
		xs, ys := int32(x), int32(y)
		var r bool
		switch op {
		case OpI32Eq:
			r = x == y
		case OpI32Ne:
			r = x != y
		case OpI32LtS:
			r = xs < ys
		case OpI32LtU:
			r = x < y
		case OpI32GtS:
			r = xs > ys
		case OpI32GtU:
			r = x > y
		case OpI32LeS:
			r = xs <= ys
		case OpI32LeU:
			r = x <= y
		case OpI32GeS:
			r = xs >= ys
		case OpI32GeU:
			r = x >= y
		}
		push(b32(r))
	case OpI32Clz:
		push(uint64(bits.LeadingZeros32(uint32(pop()))))
	case OpI32Ctz:
		push(uint64(bits.TrailingZeros32(uint32(pop()))))
	case OpI32Popcnt:
		push(uint64(bits.OnesCount32(uint32(pop()))))
	case OpI32Add, OpI32Sub, OpI32Mul, OpI32And, OpI32Or, OpI32Xor, OpI32Shl, OpI32ShrS, OpI32ShrU, OpI32Rotl, OpI32Rotr:
		y, x := uint32(pop()), uint32(pop())
		var r uint32
		switch op {
		case OpI32Add:
			r = x + y
		case OpI32Sub:
			r = x - y
		case OpI32Mul:
			r = x * y
		case OpI32And:
			r = x & y
		case OpI32Or:
			r = x | y
		case OpI32Xor:
			r = x ^ y
		case OpI32Shl:
			r = x << (y & 31)
		case OpI32ShrS:
			r = uint32(int32(x) >> (y & 31))
		case OpI32ShrU:
			r = x >> (y & 31)
		case OpI32Rotl:
			r = bits.RotateLeft32(x, int(y&31))
		case OpI32Rotr:
			r = bits.RotateLeft32(x, -int(y&31))
		}
		push(uint64(r))
	case OpI32DivS, OpI32DivU, OpI32RemS, OpI32RemU:
		y, x := uint32(pop()), uint32(pop())
		if y == 0 {
			return trap("integer divide by zero")
		}
		var r uint32
		switch op {
		case OpI32DivS:
			if int32(x) == math.MinInt32 && int32(y) == -1 {
				return trap("integer overflow")
			}
			r = uint32(int32(x) / int32(y))
		case OpI32DivU:
			r = x / y
		case OpI32RemS:
			if int32(x) == math.MinInt32 && int32(y) == -1 {
				r = 0
			} else {
				r = uint32(int32(x) % int32(y))
			}
		case OpI32RemU:
			r = x % y
		}
		push(uint64(r))

	// ---- i64 ----
	case OpI64Eqz:
		push(b32(pop() == 0))
	case OpI64Eq, OpI64Ne, OpI64LtS, OpI64LtU, OpI64GtS, OpI64GtU, OpI64LeS, OpI64LeU, OpI64GeS, OpI64GeU:
		y, x := pop(), pop()
		xs, ys := int64(x), int64(y)
		var r bool
		switch op {
		case OpI64Eq:
			r = x == y
		case OpI64Ne:
			r = x != y
		case OpI64LtS:
			r = xs < ys
		case OpI64LtU:
			r = x < y
		case OpI64GtS:
			r = xs > ys
		case OpI64GtU:
			r = x > y
		case OpI64LeS:
			r = xs <= ys
		case OpI64LeU:
			r = x <= y
		case OpI64GeS:
			r = xs >= ys
		case OpI64GeU:
			r = x >= y
		}
		push(b32(r))
	case OpI64Clz:
		push(uint64(bits.LeadingZeros64(pop())))
	case OpI64Ctz:
		push(uint64(bits.TrailingZeros64(pop())))
	case OpI64Popcnt:
		push(uint64(bits.OnesCount64(pop())))
	case OpI64Add, OpI64Sub, OpI64Mul, OpI64And, OpI64Or, OpI64Xor, OpI64Shl, OpI64ShrS, OpI64ShrU, OpI64Rotl, OpI64Rotr:
		y, x := pop(), pop()
		var r uint64
		switch op {
		case OpI64Add:
			r = x + y
		case OpI64Sub:
			r = x - y
		case OpI64Mul:
			r = x * y
		case OpI64And:
			r = x & y
		case OpI64Or:
			r = x | y
		case OpI64Xor:
			r = x ^ y
		case OpI64Shl:
			r = x << (y & 63)
		case OpI64ShrS:
			r = uint64(int64(x) >> (y & 63))
		case OpI64ShrU:
			r = x >> (y & 63)
		case OpI64Rotl:
			r = bits.RotateLeft64(x, int(y&63))
		case OpI64Rotr:
			r = bits.RotateLeft64(x, -int(y&63))
		}
		push(r)
	case OpI64DivS, OpI64DivU, OpI64RemS, OpI64RemU:
		y, x := pop(), pop()
		if y == 0 {
			return trap("integer divide by zero")
		}
		var r uint64
		switch op {
		case OpI64DivS:
			if int64(x) == math.MinInt64 && int64(y) == -1 {
				return trap("integer overflow")
			}
			r = uint64(int64(x) / int64(y))
		case OpI64DivU:
			r = x / y
		case OpI64RemS:
			if int64(x) == math.MinInt64 && int64(y) == -1 {
				r = 0
			} else {
				r = uint64(int64(x) % int64(y))
			}
		case OpI64RemU:
			r = x % y
		}
		push(r)

	// ---- f32 ----
	case OpF32Eq, OpF32Ne, OpF32Lt, OpF32Gt, OpF32Le, OpF32Ge:
		y := math.Float32frombits(uint32(pop()))
		x := math.Float32frombits(uint32(pop()))
		var r bool
		switch op {
		case OpF32Eq:
			r = x == y
		case OpF32Ne:
			r = x != y
		case OpF32Lt:
			r = x < y
		case OpF32Gt:
			r = x > y
		case OpF32Le:
			r = x <= y
		case OpF32Ge:
			r = x >= y
		}
		push(b32(r))
	case OpF32Abs, OpF32Neg, OpF32Ceil, OpF32Floor, OpF32Trunc, OpF32Nearest, OpF32Sqrt:
		x := float64(math.Float32frombits(uint32(pop())))
		var r float64
		switch op {
		case OpF32Abs:
			r = math.Abs(x)
		case OpF32Neg:
			r = -x
		case OpF32Ceil:
			r = math.Ceil(x)
		case OpF32Floor:
			r = math.Floor(x)
		case OpF32Trunc:
			r = math.Trunc(x)
		case OpF32Nearest:
			r = math.RoundToEven(x)
		case OpF32Sqrt:
			r = math.Sqrt(x)
		}
		if op == OpF32Abs || op == OpF32Neg {
			push(uint64(math.Float32bits(float32(r))))
		} else {
			push(canonF32(float32(r)))
		}
	case OpF32Add, OpF32Sub, OpF32Mul, OpF32Div, OpF32Min, OpF32Max, OpF32Copysign:
		y := math.Float32frombits(uint32(pop()))
		x := math.Float32frombits(uint32(pop()))
		var r float32
		switch op {
		case OpF32Add:
			r = x + y
		case OpF32Sub:
			r = x - y
		case OpF32Mul:
			r = x * y
		case OpF32Div:
			r = x / y
		case OpF32Min:
			r = float32(wasmMin(float64(x), float64(y)))
		case OpF32Max:
			r = float32(wasmMax(float64(x), float64(y)))
		case OpF32Copysign:
			r = float32(math.Copysign(float64(x), float64(y)))
		}
		if op == OpF32Copysign {
			push(uint64(math.Float32bits(r)))
		} else {
			push(canonF32(r))
		}

	// ---- f64 ----
	case OpF64Eq, OpF64Ne, OpF64Lt, OpF64Gt, OpF64Le, OpF64Ge:
		y := math.Float64frombits(pop())
		x := math.Float64frombits(pop())
		var r bool
		switch op {
		case OpF64Eq:
			r = x == y
		case OpF64Ne:
			r = x != y
		case OpF64Lt:
			r = x < y
		case OpF64Gt:
			r = x > y
		case OpF64Le:
			r = x <= y
		case OpF64Ge:
			r = x >= y
		}
		push(b32(r))
	case OpF64Abs, OpF64Neg, OpF64Ceil, OpF64Floor, OpF64Trunc, OpF64Nearest, OpF64Sqrt:
		x := math.Float64frombits(pop())
		var r float64
		switch op {
		case OpF64Abs:
			r = math.Abs(x)
		case OpF64Neg:
			r = -x
		case OpF64Ceil:
			r = math.Ceil(x)
		case OpF64Floor:
			r = math.Floor(x)
		case OpF64Trunc:
			r = math.Trunc(x)
		case OpF64Nearest:
			r = math.RoundToEven(x)
		case OpF64Sqrt:
			r = math.Sqrt(x)
		}
		if op == OpF64Abs || op == OpF64Neg {
			push(math.Float64bits(r))
		} else {
			push(canonF64(r))
		}
	case OpF64Add, OpF64Sub, OpF64Mul, OpF64Div, OpF64Min, OpF64Max, OpF64Copysign:
		y := math.Float64frombits(pop())
		x := math.Float64frombits(pop())
		var r float64
		switch op {
		case OpF64Add:
			r = x + y
		case OpF64Sub:
			r = x - y
		case OpF64Mul:
			r = x * y
		case OpF64Div:
			r = x / y
		case OpF64Min:
			r = wasmMin(x, y)
		case OpF64Max:
			r = wasmMax(x, y)
		case OpF64Copysign:
			r = math.Copysign(x, y)
		}
		if op == OpF64Copysign {
			push(math.Float64bits(r))
		} else {
			push(canonF64(r))
		}

	// ---- conversions ----
	case OpI32WrapI64:
		push(uint64(uint32(pop())))
	case OpI32TruncF32S, OpI32TruncF64S:
		var x float64
		if op == OpI32TruncF32S {
			x = float64(math.Float32frombits(uint32(pop())))
		} else {
			x = math.Float64frombits(pop())
		}
		if math.IsNaN(x) {
			return trap("invalid conversion to integer")
		}
		t := math.Trunc(x)
		if t < math.MinInt32 || t > math.MaxInt32 {
			return trap("integer overflow in conversion")
		}
		push(uint64(uint32(int32(t))))
	case OpI32TruncF32U, OpI32TruncF64U:
		var x float64
		if op == OpI32TruncF32U {
			x = float64(math.Float32frombits(uint32(pop())))
		} else {
			x = math.Float64frombits(pop())
		}
		if math.IsNaN(x) {
			return trap("invalid conversion to integer")
		}
		t := math.Trunc(x)
		if t < 0 || t > math.MaxUint32 {
			return trap("integer overflow in conversion")
		}
		push(uint64(uint32(t)))
	case OpI64ExtendI32S:
		push(uint64(int64(int32(uint32(pop())))))
	case OpI64ExtendI32U:
		push(uint64(uint32(pop())))
	case OpI64TruncF32S, OpI64TruncF64S:
		var x float64
		if op == OpI64TruncF32S {
			x = float64(math.Float32frombits(uint32(pop())))
		} else {
			x = math.Float64frombits(pop())
		}
		if math.IsNaN(x) {
			return trap("invalid conversion to integer")
		}
		t := math.Trunc(x)
		if t < math.MinInt64 || t >= math.MaxInt64 {
			return trap("integer overflow in conversion")
		}
		push(uint64(int64(t)))
	case OpI64TruncF32U, OpI64TruncF64U:
		var x float64
		if op == OpI64TruncF32U {
			x = float64(math.Float32frombits(uint32(pop())))
		} else {
			x = math.Float64frombits(pop())
		}
		if math.IsNaN(x) {
			return trap("invalid conversion to integer")
		}
		t := math.Trunc(x)
		if t < 0 || t >= math.MaxUint64 {
			return trap("integer overflow in conversion")
		}
		push(uint64(t))
	case OpF32ConvertI32S:
		push(uint64(math.Float32bits(float32(int32(uint32(pop()))))))
	case OpF32ConvertI32U:
		push(uint64(math.Float32bits(float32(uint32(pop())))))
	case OpF32ConvertI64S:
		push(uint64(math.Float32bits(float32(int64(pop())))))
	case OpF32ConvertI64U:
		push(uint64(math.Float32bits(float32(pop()))))
	case OpF32DemoteF64:
		push(canonF32(float32(math.Float64frombits(pop()))))
	case OpF64ConvertI32S:
		push(math.Float64bits(float64(int32(uint32(pop())))))
	case OpF64ConvertI32U:
		push(math.Float64bits(float64(uint32(pop()))))
	case OpF64ConvertI64S:
		push(math.Float64bits(float64(int64(pop()))))
	case OpF64ConvertI64U:
		push(math.Float64bits(float64(pop())))
	case OpF64PromoteF32:
		push(canonF64(float64(math.Float32frombits(uint32(pop())))))
	case OpI32ReinterpretF32, OpF32ReinterpretI32:
		// Raw bits are already the representation; for i32<->f32 keep low 32.
		push(uint64(uint32(pop())))
	case OpI64ReinterpretF64, OpF64ReinterpretI64:
		// Identity on the raw representation.
	default:
		return fmt.Errorf("wasm: interpreter: unhandled opcode %s", OpName(op))
	}
	*stack = s
	return nil
}

// canonF64 returns v's bits with NaN canonicalized to one quiet pattern.
// Wasm leaves NaN payloads nondeterministic and Go inherits whatever the
// hardware propagates — which may differ between two compilations of the
// same expression — so every arithmetic, rounding, and width-conversion
// result pins the payload. The cpu engines apply the identical rule (see
// cpu.bitsOf); abs/neg/copysign stay raw everywhere because they compile
// to pure sign-bit operations.
func canonF64(v float64) uint64 {
	if v != v {
		return 0x7ff8000000000000
	}
	return math.Float64bits(v)
}

// canonF32 is canonF64 at float32 width.
func canonF32(v float32) uint64 {
	if v != v {
		return 0x7fc00000
	}
	return uint64(math.Float32bits(v))
}

// wasmMin implements Wasm min semantics: NaN-propagating, -0 < +0.
func wasmMin(x, y float64) float64 {
	if math.IsNaN(x) || math.IsNaN(y) {
		return math.NaN()
	}
	if x == 0 && y == 0 {
		if math.Signbit(x) {
			return x
		}
		return y
	}
	return math.Min(x, y)
}

// wasmMax implements Wasm max semantics: NaN-propagating, +0 > -0.
func wasmMax(x, y float64) float64 {
	if math.IsNaN(x) || math.IsNaN(y) {
		return math.NaN()
	}
	if x == 0 && y == 0 {
		if !math.Signbit(x) {
			return x
		}
		return y
	}
	return math.Max(x, y)
}
