package wasm

import (
	"math"
	"reflect"
	"testing"
)

// buildAddModule returns a module exporting add(i32,i32)->i32.
func buildAddModule(t *testing.T) *Module {
	t.Helper()
	b := NewModuleBuilder()
	fb := b.Func("add", FuncType{Params: []ValType{I32, I32}, Results: []ValType{I32}})
	fb.LocalGet(0).LocalGet(1).Op(OpI32Add)
	b.Export("add", ExternFunc, fb.Index())
	return b.Module()
}

func TestAddModule(t *testing.T) {
	m := buildAddModule(t)
	if err := Validate(m); err != nil {
		t.Fatalf("validate: %v", err)
	}
	inst, err := Instantiate(m, nil)
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	res, err := inst.Invoke("add", 2, 40)
	if err != nil {
		t.Fatalf("invoke: %v", err)
	}
	if len(res) != 1 || uint32(res[0]) != 42 {
		t.Fatalf("add(2,40) = %v, want [42]", res)
	}
	// Wrapping behaviour.
	res, err = inst.Invoke("add", uint64(uint32(0xffffffff)), 1)
	if err != nil {
		t.Fatal(err)
	}
	if uint32(res[0]) != 0 {
		t.Fatalf("add(-1,1) = %d, want 0", uint32(res[0]))
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	m := buildAddModule(t)
	bin := Encode(m)
	m2, err := Decode(bin)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := Validate(m2); err != nil {
		t.Fatalf("validate decoded: %v", err)
	}
	if !reflect.DeepEqual(m.Types, m2.Types) {
		t.Errorf("types differ: %v vs %v", m.Types, m2.Types)
	}
	if len(m2.Funcs) != 1 || len(m2.Funcs[0].Body) != len(m.Funcs[0].Body) {
		t.Errorf("function body length mismatch")
	}
	inst, err := Instantiate(m2, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Invoke("add", 5, 6)
	if err != nil || uint32(res[0]) != 11 {
		t.Fatalf("decoded add(5,6) = %v, %v", res, err)
	}
}

// buildLoopSum builds sum(n) = 0+1+...+(n-1) with a loop.
func buildLoopSum(b *ModuleBuilder) uint32 {
	fb := b.Func("sum", FuncType{Params: []ValType{I32}, Results: []ValType{I32}}, I32, I32) // locals: i, acc
	// for (i = 0; i < n; i++) acc += i
	fb.Block(BlockVoid)
	fb.Loop(BlockVoid)
	// if i >= n, break
	fb.LocalGet(1).LocalGet(0).Op(OpI32GeS).BrIf(1)
	// acc += i
	fb.LocalGet(2).LocalGet(1).Op(OpI32Add).LocalSet(2)
	// i++
	fb.LocalGet(1).I32Const(1).Op(OpI32Add).LocalSet(1)
	fb.Br(0)
	fb.End() // loop
	fb.End() // block
	fb.LocalGet(2)
	b.Export("sum", ExternFunc, fb.Index())
	return fb.Index()
}

func TestLoopSum(t *testing.T) {
	b := NewModuleBuilder()
	buildLoopSum(b)
	m := b.Module()
	if err := Validate(m); err != nil {
		t.Fatalf("validate: %v", err)
	}
	inst, err := Instantiate(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 2, 10, 100} {
		res, err := inst.Invoke("sum", uint64(n))
		if err != nil {
			t.Fatalf("sum(%d): %v", n, err)
		}
		want := uint32(n * (n - 1) / 2)
		if uint32(res[0]) != want {
			t.Errorf("sum(%d) = %d, want %d", n, uint32(res[0]), want)
		}
	}
}

func TestIfElse(t *testing.T) {
	b := NewModuleBuilder()
	fb := b.Func("abs", FuncType{Params: []ValType{I32}, Results: []ValType{I32}})
	fb.LocalGet(0).I32Const(0).Op(OpI32LtS)
	fb.If(BlockOf(I32))
	fb.I32Const(0).LocalGet(0).Op(OpI32Sub)
	fb.Else()
	fb.LocalGet(0)
	fb.End()
	b.Export("abs", ExternFunc, fb.Index())
	m := b.Module()
	if err := Validate(m); err != nil {
		t.Fatalf("validate: %v", err)
	}
	inst, err := Instantiate(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[int32]int32{5: 5, -5: 5, 0: 0, -2147483647: 2147483647}
	for in, want := range cases {
		res, err := inst.Invoke("abs", uint64(uint32(in)))
		if err != nil {
			t.Fatal(err)
		}
		if int32(res[0]) != want {
			t.Errorf("abs(%d) = %d, want %d", in, int32(res[0]), want)
		}
	}
}

func TestMemoryLoadStore(t *testing.T) {
	b := NewModuleBuilder()
	b.Memory(1, 1)
	fb := b.Func("poke", FuncType{Params: []ValType{I32, I32}})
	fb.LocalGet(0).LocalGet(1).Store(OpI32Store, 0)
	b.Export("poke", ExternFunc, fb.Index())
	fb2 := b.Func("peek", FuncType{Params: []ValType{I32}, Results: []ValType{I32}})
	fb2.LocalGet(0).Load(OpI32Load, 0)
	b.Export("peek", ExternFunc, fb2.Index())
	m := b.Module()
	if err := Validate(m); err != nil {
		t.Fatalf("validate: %v", err)
	}
	inst, err := Instantiate(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Invoke("poke", 100, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	res, err := inst.Invoke("peek", 100)
	if err != nil {
		t.Fatal(err)
	}
	if uint32(res[0]) != 0xdeadbeef {
		t.Fatalf("peek = %#x", res[0])
	}
	// Out-of-bounds traps.
	if _, err := inst.Invoke("peek", 65536); err == nil {
		t.Error("expected OOB trap")
	}
	if _, err := inst.Invoke("peek", 65533); err == nil {
		t.Error("expected OOB trap for partially out-of-range access")
	}
}

func TestDivTraps(t *testing.T) {
	b := NewModuleBuilder()
	fb := b.Func("div", FuncType{Params: []ValType{I32, I32}, Results: []ValType{I32}})
	fb.LocalGet(0).LocalGet(1).Op(OpI32DivS)
	b.Export("div", ExternFunc, fb.Index())
	m := b.Module()
	inst, err := Instantiate(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Invoke("div", 1, 0); err == nil {
		t.Error("expected divide-by-zero trap")
	}
	if _, err := inst.Invoke("div", uint64(uint32(1)<<31), uint64(uint32(0xffffffff))); err == nil {
		t.Error("expected overflow trap for MinInt32 / -1")
	}
	negSeven := uint64(uint32(0xfffffff9)) // -7 as u32
	res, err := inst.Invoke("div", negSeven, 2)
	if err != nil {
		t.Fatal(err)
	}
	if int32(res[0]) != -3 {
		t.Errorf("div(-7,2) = %d, want -3 (truncating)", int32(res[0]))
	}
}

func TestCallIndirect(t *testing.T) {
	b := NewModuleBuilder()
	sig := FuncType{Params: []ValType{I32}, Results: []ValType{I32}}
	inc := b.Func("inc", sig)
	inc.LocalGet(0).I32Const(1).Op(OpI32Add)
	dbl := b.Func("dbl", sig)
	dbl.LocalGet(0).I32Const(2).Op(OpI32Mul)
	b.Table(2)
	b.Elem(0, []uint32{inc.Index(), dbl.Index()})
	disp := b.Func("dispatch", FuncType{Params: []ValType{I32, I32}, Results: []ValType{I32}})
	disp.LocalGet(1).LocalGet(0).CallIndirect(sig)
	b.Export("dispatch", ExternFunc, disp.Index())
	m := b.Module()
	if err := Validate(m); err != nil {
		t.Fatalf("validate: %v", err)
	}
	inst, err := Instantiate(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := inst.Invoke("dispatch", 0, 10)
	if uint32(res[0]) != 11 {
		t.Errorf("dispatch(0,10) = %d, want 11", res[0])
	}
	res, _ = inst.Invoke("dispatch", 1, 10)
	if uint32(res[0]) != 20 {
		t.Errorf("dispatch(1,10) = %d, want 20", res[0])
	}
	if _, err := inst.Invoke("dispatch", 5, 10); err == nil {
		t.Error("expected trap for out-of-range table index")
	}
}

func TestHostFunc(t *testing.T) {
	b := NewModuleBuilder()
	logT := FuncType{Params: []ValType{I32}, Results: []ValType{I32}}
	imp := b.ImportFunc("env", "twice", logT)
	fb := b.Func("run", FuncType{Params: []ValType{I32}, Results: []ValType{I32}})
	fb.LocalGet(0).Call(imp)
	b.Export("run", ExternFunc, fb.Index())
	m := b.Module()
	if err := Validate(m); err != nil {
		t.Fatalf("validate: %v", err)
	}
	inst, err := Instantiate(m, &Imports{Funcs: map[string]HostFunc{
		"env.twice": {Type: logT, Fn: func(_ *Instance, args []uint64) ([]uint64, error) {
			return []uint64{args[0] * 2}, nil
		}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Invoke("run", 21)
	if err != nil {
		t.Fatal(err)
	}
	if uint32(res[0]) != 42 {
		t.Fatalf("run(21) = %d", res[0])
	}
}

func TestBrTable(t *testing.T) {
	b := NewModuleBuilder()
	fb := b.Func("sel", FuncType{Params: []ValType{I32}, Results: []ValType{I32}})
	// switch(x): case0 -> 10, case1 -> 20, default -> 30
	fb.Block(BlockVoid) // depth 2 when inside all
	fb.Block(BlockVoid)
	fb.Block(BlockVoid)
	fb.LocalGet(0)
	fb.Emit(Instr{Op: OpBrTable, Table: []uint32{0, 1, 2}})
	fb.End()
	fb.I32Const(10).Return()
	fb.End()
	fb.I32Const(20).Return()
	fb.End()
	fb.I32Const(30)
	b.Export("sel", ExternFunc, fb.Index())
	m := b.Module()
	if err := Validate(m); err != nil {
		t.Fatalf("validate: %v", err)
	}
	inst, err := Instantiate(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64]uint32{0: 10, 1: 20, 2: 30, 99: 30}
	for in, w := range want {
		res, err := inst.Invoke("sel", in)
		if err != nil {
			t.Fatal(err)
		}
		if uint32(res[0]) != w {
			t.Errorf("sel(%d) = %d, want %d", in, res[0], w)
		}
	}
}

func TestF64Arith(t *testing.T) {
	b := NewModuleBuilder()
	fb := b.Func("hyp", FuncType{Params: []ValType{F64, F64}, Results: []ValType{F64}})
	fb.LocalGet(0).LocalGet(0).Op(OpF64Mul)
	fb.LocalGet(1).LocalGet(1).Op(OpF64Mul)
	fb.Op(OpF64Add).Op(OpF64Sqrt)
	b.Export("hyp", ExternFunc, fb.Index())
	m := b.Module()
	if err := Validate(m); err != nil {
		t.Fatal(err)
	}
	inst, err := Instantiate(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Invoke("hyp", math.Float64bits(3), math.Float64bits(4))
	if err != nil {
		t.Fatal(err)
	}
	if got := math.Float64frombits(res[0]); got != 5 {
		t.Errorf("hyp(3,4) = %g, want 5", got)
	}
}

func TestValidateRejects(t *testing.T) {
	// Type mismatch: i32.add on f64 operands.
	b := NewModuleBuilder()
	fb := b.Func("bad", FuncType{Results: []ValType{I32}})
	fb.F64Const(1).F64Const(2).Op(OpI32Add)
	m := b.Module()
	if err := Validate(m); err == nil {
		t.Error("expected validation error for f64 operands to i32.add")
	}

	// Stack underflow.
	b2 := NewModuleBuilder()
	fb2 := b2.Func("bad2", FuncType{Results: []ValType{I32}})
	fb2.Op(OpI32Add)
	if err := Validate(b2.Module()); err == nil {
		t.Error("expected validation error for stack underflow")
	}

	// Branch depth out of range.
	b3 := NewModuleBuilder()
	fb3 := b3.Func("bad3", FuncType{})
	fb3.Br(5)
	if err := Validate(b3.Module()); err == nil {
		t.Error("expected validation error for bad branch depth")
	}

	// Local index out of range.
	b4 := NewModuleBuilder()
	fb4 := b4.Func("bad4", FuncType{Results: []ValType{I32}})
	fb4.LocalGet(3)
	if err := Validate(b4.Module()); err == nil {
		t.Error("expected validation error for bad local index")
	}

	// If with result but no else.
	b5 := NewModuleBuilder()
	fb5 := b5.Func("bad5", FuncType{Results: []ValType{I32}})
	fb5.I32Const(1).If(BlockOf(I32)).I32Const(2).End()
	if err := Validate(b5.Module()); err == nil {
		t.Error("expected validation error for if-with-result without else")
	}
	_ = fb
}

func TestValidateUnreachableCode(t *testing.T) {
	// Code after br is unreachable; polymorphic stack must accept anything.
	b := NewModuleBuilder()
	fb := b.Func("f", FuncType{Results: []ValType{I32}})
	fb.Block(BlockOf(I32))
	fb.I32Const(1).Br(0)
	fb.Op(OpI32Add) // unreachable, operands come from the polymorphic stack
	fb.End()
	m := b.Module()
	if err := Validate(m); err != nil {
		t.Errorf("unreachable code should validate: %v", err)
	}
}

func TestMemoryGrow(t *testing.T) {
	b := NewModuleBuilder()
	b.Memory(1, 4)
	fb := b.Func("grow", FuncType{Params: []ValType{I32}, Results: []ValType{I32}})
	fb.LocalGet(0).Op(OpMemoryGrow)
	b.Export("grow", ExternFunc, fb.Index())
	fb2 := b.Func("size", FuncType{Results: []ValType{I32}})
	fb2.Op(OpMemorySize)
	b.Export("size", ExternFunc, fb2.Index())
	m := b.Module()
	inst, err := Instantiate(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := inst.Invoke("size")
	if uint32(res[0]) != 1 {
		t.Fatalf("initial size = %d", res[0])
	}
	res, _ = inst.Invoke("grow", 2)
	if int32(res[0]) != 1 {
		t.Fatalf("grow(2) = %d, want 1 (old size)", int32(res[0]))
	}
	res, _ = inst.Invoke("size")
	if uint32(res[0]) != 3 {
		t.Fatalf("size after grow = %d, want 3", res[0])
	}
	res, _ = inst.Invoke("grow", 100)
	if int32(res[0]) != -1 {
		t.Fatalf("grow(100) = %d, want -1 (exceeds max)", int32(res[0]))
	}
}

func TestGlobals(t *testing.T) {
	b := NewModuleBuilder()
	g := b.GlobalI32(100)
	fb := b.Func("bump", FuncType{Params: []ValType{I32}, Results: []ValType{I32}})
	fb.GlobalGet(g).LocalGet(0).Op(OpI32Add).GlobalSet(g)
	fb.GlobalGet(g)
	b.Export("bump", ExternFunc, fb.Index())
	m := b.Module()
	if err := Validate(m); err != nil {
		t.Fatal(err)
	}
	inst, err := Instantiate(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := inst.Invoke("bump", 5)
	if uint32(res[0]) != 105 {
		t.Fatalf("bump = %d", res[0])
	}
	res, _ = inst.Invoke("bump", 5)
	if uint32(res[0]) != 110 {
		t.Fatalf("bump 2 = %d", res[0])
	}
}

func TestRecursionFactorial(t *testing.T) {
	b := NewModuleBuilder()
	sig := FuncType{Params: []ValType{I64}, Results: []ValType{I64}}
	fb := b.Func("fact", sig)
	fb.LocalGet(0).I64Const(2).Op(OpI64LtS)
	fb.If(BlockOf(I64))
	fb.I64Const(1)
	fb.Else()
	fb.LocalGet(0)
	fb.LocalGet(0).I64Const(1).Op(OpI64Sub).Call(fb.Index())
	fb.Op(OpI64Mul)
	fb.End()
	b.Export("fact", ExternFunc, fb.Index())
	m := b.Module()
	if err := Validate(m); err != nil {
		t.Fatal(err)
	}
	inst, err := Instantiate(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Invoke("fact", 20)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 2432902008176640000 {
		t.Fatalf("fact(20) = %d", res[0])
	}
}

func TestDataSegments(t *testing.T) {
	b := NewModuleBuilder()
	b.Memory(1, 1)
	b.Data(16, []byte("hello"))
	fb := b.Func("byteAt", FuncType{Params: []ValType{I32}, Results: []ValType{I32}})
	fb.LocalGet(0).Load(OpI32Load8U, 0)
	b.Export("byteAt", ExternFunc, fb.Index())
	m := b.Module()
	inst, err := Instantiate(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := inst.Invoke("byteAt", 16)
	if byte(res[0]) != 'h' {
		t.Fatalf("byteAt(16) = %c", byte(res[0]))
	}
	res, _ = inst.Invoke("byteAt", 20)
	if byte(res[0]) != 'o' {
		t.Fatalf("byteAt(20) = %c", byte(res[0]))
	}
}

func TestEncodeDecodeComplex(t *testing.T) {
	b := NewModuleBuilder()
	b.Memory(2, 10)
	b.Data(0, []byte{1, 2, 3, 4})
	g := b.GlobalI32(7)
	sig := FuncType{Params: []ValType{I32}, Results: []ValType{I32}}
	f1 := b.Func("f1", sig, I32, I64, F64)
	f1.LocalGet(0).GlobalGet(g).Op(OpI32Add)
	b.Table(1)
	b.Elem(0, []uint32{f1.Index()})
	f2 := b.Func("f2", sig)
	f2.LocalGet(0).I32Const(0).CallIndirect(sig)
	b.Export("f2", ExternFunc, f2.Index())
	b.Export("mem", ExternMemory, 0)
	m := b.Module()
	if err := Validate(m); err != nil {
		t.Fatalf("validate: %v", err)
	}

	bin := Encode(m)
	m2, err := Decode(bin)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := Validate(m2); err != nil {
		t.Fatalf("validate round-tripped: %v", err)
	}
	inst, err := Instantiate(m2, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Invoke("f2", 35)
	if err != nil {
		t.Fatal(err)
	}
	if uint32(res[0]) != 42 {
		t.Fatalf("f2(35) = %d, want 42", res[0])
	}
}

func TestPrint(t *testing.T) {
	m := buildAddModule(t)
	s := Print(m)
	for _, want := range []string{"(module", "local.get 0", "i32.add", `export "add"`} {
		if !contains(s, want) {
			t.Errorf("Print output missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestBuilderInterleavedFuncs pins a former footgun: a FuncBuilder created
// before later Func calls kept a pointer into the module's function slice,
// so the append's reallocation orphaned it and its instructions went to a
// stale copy. Builders must stay usable in any interleaving.
func TestBuilderInterleavedFuncs(t *testing.T) {
	b := NewModuleBuilder()
	sig := FuncType{Results: []ValType{I32}}
	first := b.Func("first", sig)
	// Force the Funcs slice to reallocate several times.
	for i := 0; i < 9; i++ {
		f := b.Func("", sig)
		f.I32Const(int32(i))
	}
	first.I32Const(77)
	b.Export("first", ExternFunc, first.Index())
	m := b.Module()
	if err := Validate(m); err != nil {
		t.Fatalf("module invalid: %v", err)
	}
	if len(m.Funcs[0].Body) != 2 { // i32.const 77, end
		t.Fatalf("first function body has %d instrs, want 2", len(m.Funcs[0].Body))
	}
	inst, err := Instantiate(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	ret, err := inst.Invoke("first")
	if err != nil {
		t.Fatal(err)
	}
	if int32(ret[0]) != 77 {
		t.Fatalf("first() = %d, want 77", int32(ret[0]))
	}
}
