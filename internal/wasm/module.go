package wasm

import "fmt"

// Module is a parsed or programmatically built WebAssembly module.
type Module struct {
	Types   []FuncType
	Imports []Import
	Funcs   []Func // module-defined functions (not imports)
	Tables  []Table
	Mems    []Limits
	Globals []Global
	Exports []Export
	Start   *uint32
	Elems   []Elem
	Data    []Data

	// Names optionally maps function index (import-space) to a symbolic
	// name; populated by the builder and minic for diagnostics.
	Names map[uint32]string
}

// Import is a single imported extern.
type Import struct {
	Module string
	Name   string
	Kind   ExternKind

	// TypeIdx is the signature index when Kind == ExternFunc.
	TypeIdx uint32
	// Table, Mem, GlobalType describe the other kinds.
	Table      Table
	Mem        Limits
	GlobalType GlobalType
}

// Func is a module-defined function: a signature index, local declarations,
// and a flat body terminated by OpEnd.
type Func struct {
	TypeIdx uint32
	Locals  []ValType // locals beyond the parameters
	Body    []Instr
}

// Table is a funcref table.
type Table struct {
	Limits Limits
}

// Global is a module-defined global with a constant initializer.
type Global struct {
	Type GlobalType
	// Init must be a single constant instruction (t.const or global.get
	// of an imported immutable global).
	Init Instr
}

// Export names a module item.
type Export struct {
	Name  string
	Kind  ExternKind
	Index uint32
}

// Elem is an element segment initializing part of a table.
type Elem struct {
	TableIdx uint32
	Offset   Instr // constant expression
	Funcs    []uint32
}

// Data is a data segment initializing part of linear memory.
type Data struct {
	MemIdx uint32
	Offset Instr // constant expression
	Bytes  []byte
}

// NumImportedFuncs returns the number of imported functions; module-defined
// functions are indexed starting at this value.
func (m *Module) NumImportedFuncs() int {
	n := 0
	for _, im := range m.Imports {
		if im.Kind == ExternFunc {
			n++
		}
	}
	return n
}

// NumImportedGlobals returns the number of imported globals.
func (m *Module) NumImportedGlobals() int {
	n := 0
	for _, im := range m.Imports {
		if im.Kind == ExternGlobal {
			n++
		}
	}
	return n
}

// FuncTypeAt returns the signature of the function at index idx in the
// import-prefixed function index space.
func (m *Module) FuncTypeAt(idx uint32) (FuncType, error) {
	i := uint32(0)
	for _, im := range m.Imports {
		if im.Kind != ExternFunc {
			continue
		}
		if i == idx {
			if int(im.TypeIdx) >= len(m.Types) {
				return FuncType{}, fmt.Errorf("wasm: import %q.%q has bad type index %d", im.Module, im.Name, im.TypeIdx)
			}
			return m.Types[im.TypeIdx], nil
		}
		i++
	}
	d := int(idx) - m.NumImportedFuncs()
	if d < 0 || d >= len(m.Funcs) {
		return FuncType{}, fmt.Errorf("wasm: function index %d out of range", idx)
	}
	ti := m.Funcs[d].TypeIdx
	if int(ti) >= len(m.Types) {
		return FuncType{}, fmt.Errorf("wasm: function %d has bad type index %d", idx, ti)
	}
	return m.Types[ti], nil
}

// GlobalTypeAt returns the type of the global at index idx in the
// import-prefixed global index space.
func (m *Module) GlobalTypeAt(idx uint32) (GlobalType, error) {
	i := uint32(0)
	for _, im := range m.Imports {
		if im.Kind != ExternGlobal {
			continue
		}
		if i == idx {
			return im.GlobalType, nil
		}
		i++
	}
	d := int(idx) - m.NumImportedGlobals()
	if d < 0 || d >= len(m.Globals) {
		return GlobalType{}, fmt.Errorf("wasm: global index %d out of range", idx)
	}
	return m.Globals[d].Type, nil
}

// ExportedFunc returns the import-space function index of the export named
// name, if it exists and is a function.
func (m *Module) ExportedFunc(name string) (uint32, bool) {
	for _, e := range m.Exports {
		if e.Name == name && e.Kind == ExternFunc {
			return e.Index, true
		}
	}
	return 0, false
}

// FuncName returns a symbolic name for function index idx if one is known,
// else "func<idx>".
func (m *Module) FuncName(idx uint32) string {
	if m.Names != nil {
		if n, ok := m.Names[idx]; ok {
			return n
		}
	}
	return fmt.Sprintf("func%d", idx)
}

// AddTypeDedup appends ft to the type section unless an identical signature
// already exists, returning its index either way.
func (m *Module) AddTypeDedup(ft FuncType) uint32 {
	for i, t := range m.Types {
		if t.Equal(ft) {
			return uint32(i)
		}
	}
	m.Types = append(m.Types, ft)
	return uint32(len(m.Types) - 1)
}
