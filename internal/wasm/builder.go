package wasm

import "fmt"

// ModuleBuilder constructs modules programmatically. It is used by the
// mini-C compiler and by tests; the matmul case study is written with it.
type ModuleBuilder struct {
	m       *Module
	started bool
}

// NewModuleBuilder returns an empty module builder.
func NewModuleBuilder() *ModuleBuilder {
	return &ModuleBuilder{m: &Module{Names: map[uint32]string{}}}
}

// ImportFunc declares an imported function and returns its index.
// All imports must be declared before the first defined function.
func (b *ModuleBuilder) ImportFunc(module, name string, ft FuncType) uint32 {
	if b.started {
		panic("wasm: imports must precede defined functions")
	}
	ti := b.m.AddTypeDedup(ft)
	b.m.Imports = append(b.m.Imports, Import{Module: module, Name: name, Kind: ExternFunc, TypeIdx: ti})
	idx := uint32(b.m.NumImportedFuncs() - 1)
	b.m.Names[idx] = module + "." + name
	return idx
}

// Memory declares the module memory with min/max pages.
func (b *ModuleBuilder) Memory(min, max uint32) {
	b.m.Mems = []Limits{{Min: min, Max: max, HasMax: max > 0}}
}

// Table declares the funcref table with the given size.
func (b *ModuleBuilder) Table(size uint32) {
	b.m.Tables = []Table{{Limits: Limits{Min: size, Max: size, HasMax: true}}}
}

// Elem appends an element segment at a constant offset.
func (b *ModuleBuilder) Elem(offset int32, funcs []uint32) {
	b.m.Elems = append(b.m.Elems, Elem{
		Offset: Instr{Op: OpI32Const, I64: int64(offset)},
		Funcs:  funcs,
	})
}

// Data appends a data segment at a constant offset.
func (b *ModuleBuilder) Data(offset int32, bytes []byte) {
	b.m.Data = append(b.m.Data, Data{
		Offset: Instr{Op: OpI32Const, I64: int64(offset)},
		Bytes:  bytes,
	})
}

// Global declares a module global with a constant initializer and returns its
// index in the global index space.
func (b *ModuleBuilder) Global(t ValType, mutable bool, init Instr) uint32 {
	b.m.Globals = append(b.m.Globals, Global{
		Type: GlobalType{Type: t, Mutable: mutable},
		Init: init,
	})
	return uint32(b.m.NumImportedGlobals() + len(b.m.Globals) - 1)
}

// GlobalI32 declares a mutable i32 global initialized to v.
func (b *ModuleBuilder) GlobalI32(v int32) uint32 {
	return b.Global(I32, true, Instr{Op: OpI32Const, I64: int64(v)})
}

// Export adds an export entry.
func (b *ModuleBuilder) Export(name string, kind ExternKind, idx uint32) {
	b.m.Exports = append(b.m.Exports, Export{Name: name, Kind: kind, Index: idx})
}

// Func begins a new function; the returned FuncBuilder appends instructions.
// Finish the function with End() (the final end is added automatically by
// Seal if missing).
func (b *ModuleBuilder) Func(name string, ft FuncType, locals ...ValType) *FuncBuilder {
	b.started = true
	ti := b.m.AddTypeDedup(ft)
	idx := uint32(b.m.NumImportedFuncs() + len(b.m.Funcs))
	b.m.Funcs = append(b.m.Funcs, Func{TypeIdx: ti, Locals: locals})
	if name != "" {
		b.m.Names[idx] = name
	}
	return &FuncBuilder{mod: b, fidx: idx, slot: len(b.m.Funcs) - 1, nparams: len(ft.Params)}
}

// Module seals and returns the built module. Function bodies missing a
// terminating end get one appended.
func (b *ModuleBuilder) Module() *Module {
	for i := range b.m.Funcs {
		f := &b.m.Funcs[i]
		// The body needs one end per open block plus one for the function
		// frame itself. Count nesting and top up.
		depth := 1
		for _, in := range f.Body {
			switch in.Op {
			case OpBlock, OpLoop, OpIf:
				depth++
			case OpEnd:
				depth--
			}
		}
		for ; depth > 0; depth-- {
			f.Body = append(f.Body, Instr{Op: OpEnd})
		}
	}
	return b.m
}

// FuncBuilder appends instructions to one function body.
type FuncBuilder struct {
	mod     *ModuleBuilder
	slot    int // index into mod.m.Funcs — the slice reallocates as functions are added, so no pointer
	fidx    uint32
	nparams int
	depth   int // open blocks
}

// Index returns the function's index in the import-prefixed function space.
func (fb *FuncBuilder) Index() uint32 { return fb.fidx }

// fn resolves the function record. Looked up on every access rather than
// held as a pointer: interleaving Func calls reallocates mod.m.Funcs, which
// would orphan any builder created earlier.
func (fb *FuncBuilder) fn() *Func { return &fb.mod.m.Funcs[fb.slot] }

// AddLocal appends a new local of type t and returns its index.
func (fb *FuncBuilder) AddLocal(t ValType) uint32 {
	f := fb.fn()
	f.Locals = append(f.Locals, t)
	return uint32(fb.nparams + len(f.Locals) - 1)
}

// Emit appends a raw instruction.
func (fb *FuncBuilder) Emit(in Instr) *FuncBuilder {
	f := fb.fn()
	f.Body = append(f.Body, in)
	return fb
}

// Op appends a no-immediate instruction.
func (fb *FuncBuilder) Op(op Opcode) *FuncBuilder { return fb.Emit(Instr{Op: op}) }

// I32Const pushes a 32-bit constant.
func (fb *FuncBuilder) I32Const(v int32) *FuncBuilder {
	return fb.Emit(Instr{Op: OpI32Const, I64: int64(v)})
}

// I64Const pushes a 64-bit constant.
func (fb *FuncBuilder) I64Const(v int64) *FuncBuilder {
	return fb.Emit(Instr{Op: OpI64Const, I64: v})
}

// F64Const pushes a float constant.
func (fb *FuncBuilder) F64Const(v float64) *FuncBuilder {
	return fb.Emit(Instr{Op: OpF64Const, F64: v})
}

// LocalGet, LocalSet, LocalTee, GlobalGet, GlobalSet access variables.
func (fb *FuncBuilder) LocalGet(i uint32) *FuncBuilder {
	return fb.Emit(Instr{Op: OpLocalGet, I64: int64(i)})
}

// LocalSet pops into local i.
func (fb *FuncBuilder) LocalSet(i uint32) *FuncBuilder {
	return fb.Emit(Instr{Op: OpLocalSet, I64: int64(i)})
}

// LocalTee stores the stack top into local i without popping.
func (fb *FuncBuilder) LocalTee(i uint32) *FuncBuilder {
	return fb.Emit(Instr{Op: OpLocalTee, I64: int64(i)})
}

// GlobalGet pushes global i.
func (fb *FuncBuilder) GlobalGet(i uint32) *FuncBuilder {
	return fb.Emit(Instr{Op: OpGlobalGet, I64: int64(i)})
}

// GlobalSet pops into global i.
func (fb *FuncBuilder) GlobalSet(i uint32) *FuncBuilder {
	return fb.Emit(Instr{Op: OpGlobalSet, I64: int64(i)})
}

// Block opens a block.
func (fb *FuncBuilder) Block(bt BlockType) *FuncBuilder {
	fb.depth++
	return fb.Emit(Instr{Op: OpBlock, Block: bt})
}

// Loop opens a loop.
func (fb *FuncBuilder) Loop(bt BlockType) *FuncBuilder {
	fb.depth++
	return fb.Emit(Instr{Op: OpLoop, Block: bt})
}

// If opens an if.
func (fb *FuncBuilder) If(bt BlockType) *FuncBuilder {
	fb.depth++
	return fb.Emit(Instr{Op: OpIf, Block: bt})
}

// Else switches to the else arm of the innermost if.
func (fb *FuncBuilder) Else() *FuncBuilder { return fb.Op(OpElse) }

// End closes the innermost block/loop/if.
func (fb *FuncBuilder) End() *FuncBuilder {
	fb.depth--
	return fb.Op(OpEnd)
}

// Br branches to the block depth levels out.
func (fb *FuncBuilder) Br(depth uint32) *FuncBuilder {
	return fb.Emit(Instr{Op: OpBr, I64: int64(depth)})
}

// BrIf conditionally branches.
func (fb *FuncBuilder) BrIf(depth uint32) *FuncBuilder {
	return fb.Emit(Instr{Op: OpBrIf, I64: int64(depth)})
}

// Call calls function index f.
func (fb *FuncBuilder) Call(f uint32) *FuncBuilder {
	return fb.Emit(Instr{Op: OpCall, I64: int64(f)})
}

// CallIndirect calls through the table with the given type signature.
func (fb *FuncBuilder) CallIndirect(ft FuncType) *FuncBuilder {
	ti := fb.mod.m.AddTypeDedup(ft)
	return fb.Emit(Instr{Op: OpCallIndirect, I64: int64(ti)})
}

// Load emits a load with the natural alignment for the access size.
func (fb *FuncBuilder) Load(op Opcode, offset uint32) *FuncBuilder {
	return fb.Emit(Instr{Op: op, Offset: offset, Align: naturalAlign(op)})
}

// Store emits a store with the natural alignment for the access size.
func (fb *FuncBuilder) Store(op Opcode, offset uint32) *FuncBuilder {
	return fb.Emit(Instr{Op: op, Offset: offset, Align: naturalAlign(op)})
}

// Return emits an explicit return.
func (fb *FuncBuilder) Return() *FuncBuilder { return fb.Op(OpReturn) }

func naturalAlign(op Opcode) uint32 {
	switch op.MemAccessBytes() {
	case 8:
		return 3
	case 4:
		return 2
	case 2:
		return 1
	}
	return 0
}

// Depth returns the number of currently open blocks (useful for computing
// branch targets).
func (fb *FuncBuilder) Depth() int { return fb.depth }

// String summarizes the builder state for debugging.
func (fb *FuncBuilder) String() string {
	return fmt.Sprintf("func %d: %d instrs, %d open blocks", fb.fidx, len(fb.fn().Body), fb.depth)
}
