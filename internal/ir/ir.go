// Package ir defines the three-address intermediate representation produced
// by lowering WebAssembly and consumed by the register allocators and the
// x86-64 emitters. It also provides CFG utilities and liveness analysis.
package ir

import (
	"fmt"
	"math/bits"
	"strings"
)

// VReg is a virtual register. NoV marks an absent operand.
type VReg int32

// NoV is the absent virtual register.
const NoV VReg = -1

// Class is a register class.
type Class uint8

// Register classes.
const (
	GP Class = iota // integer
	FP              // floating point (SSE)
)

// CC is a comparison condition used by Cmp/FCmp and fused branches.
type CC uint8

// Conditions. Unsigned variants are suffixed U; float compares use the
// same codes with FCmp (unordered handled by the emitter).
const (
	CCNone CC = iota
	CCEq
	CCNe
	CCLt
	CCLe
	CCGt
	CCGe
	CCLtU
	CCLeU
	CCGtU
	CCGeU
)

var ccNames = [...]string{"", "eq", "ne", "lt", "le", "gt", "ge", "ltu", "leu", "gtu", "geu"}

func (c CC) String() string { return ccNames[c] }

// Negate returns the inverse condition.
func (c CC) Negate() CC {
	switch c {
	case CCEq:
		return CCNe
	case CCNe:
		return CCEq
	case CCLt:
		return CCGe
	case CCLe:
		return CCGt
	case CCGt:
		return CCLe
	case CCGe:
		return CCLt
	case CCLtU:
		return CCGeU
	case CCLeU:
		return CCGtU
	case CCGtU:
		return CCLeU
	case CCGeU:
		return CCLtU
	}
	return CCNone
}

// Op is an IR operation.
type Op uint8

// IR operations.
const (
	Nop Op = iota
	// Const: Dst = Imm (GP). FConst: Dst = F64 (FP).
	Const
	FConst
	// Mov: Dst = A (same class).
	Mov
	// Integer binary ops: Dst = A op B. W selects 32/64-bit.
	Add
	Sub
	Mul
	DivS
	DivU
	RemS
	RemU
	And
	Or
	Xor
	Shl
	ShrS
	ShrU
	Rotl
	Rotr
	// Integer unary.
	Clz
	Ctz
	Popcnt
	Eqz // Dst = (A == 0)
	// Cmp: Dst(GP) = (A cc B) as 0/1. W selects width.
	Cmp
	// Select: Dst = C(A) != 0 ? A... encoded as Dst = (Cond in A) ? B : C
	// with A the condition vreg, B the true value, C stored in Extra.
	Select
	// Float ops (W = 4 or 8 for f32/f64).
	FAdd
	FSub
	FMul
	FDiv
	FSqrt
	FAbs
	FNeg
	FMin
	FMax
	FCopysign
	FCeil
	FFloor
	FTrunc
	FNearest
	// FCmp: Dst(GP) = (A cc B) on floats.
	FCmp
	// Conversions.
	ExtS      // sign-extend 32->64: Dst64 = sext(A32)
	ExtU      // zero-extend 32->64
	Wrap      // Dst32 = A64 truncated
	I2F       // int (W=src width, Unsigned flag) -> float (FW)
	F2I       // float (FW) -> int (W, Unsigned flag); traps on overflow
	F2F       // float width change; FW = dst width
	BitcastIF // GP -> FP raw bits
	BitcastFI // FP -> GP raw bits
	// Memory. Load: Dst = mem[A + Off]; Store: mem[A + Off] = B.
	// LoadKind gives access width/sign; class from Dst/B.
	Load
	Store
	// Globals are engine-instance slots accessed via the globals area.
	GlobalLd // Dst = global[Idx]
	GlobalSt // global[Idx] = A
	// Memory management.
	MemSize // Dst = pages
	MemGrow // Dst = old pages; A = delta
	// Calls. Args lists argument vregs. Dst = NoV for void.
	Call     // direct: Callee = function index (module space)
	CallInd  // A = table index; SigID for the check
	CallHost // Callee = host function index
	// Terminators.
	Jump    // Targets[0]
	Cond    // if A != 0 goto Targets[0] else Targets[1]; may carry CC fusion
	CondCmp // fused compare+branch: if (A cc B) goto Targets[0] else Targets[1]
	BrTable // A selects Targets[i]; last entry is default
	Ret     // A = value or NoV
	Trap    // unreachable
)

var opNames = map[Op]string{
	Nop: "nop", Const: "const", FConst: "fconst", Mov: "mov",
	Add: "add", Sub: "sub", Mul: "mul", DivS: "divs", DivU: "divu",
	RemS: "rems", RemU: "remu", And: "and", Or: "or", Xor: "xor",
	Shl: "shl", ShrS: "shrs", ShrU: "shru", Rotl: "rotl", Rotr: "rotr",
	Clz: "clz", Ctz: "ctz", Popcnt: "popcnt", Eqz: "eqz",
	Cmp: "cmp", Select: "select",
	FAdd: "fadd", FSub: "fsub", FMul: "fmul", FDiv: "fdiv", FSqrt: "fsqrt",
	FAbs: "fabs", FNeg: "fneg", FMin: "fmin", FMax: "fmax", FCopysign: "fcopysign",
	FCeil: "fceil", FFloor: "ffloor", FTrunc: "ftrunc", FNearest: "fnearest",
	FCmp: "fcmp", ExtS: "exts", ExtU: "extu", Wrap: "wrap",
	I2F: "i2f", F2I: "f2i", F2F: "f2f", BitcastIF: "bitcast_if", BitcastFI: "bitcast_fi",
	Load: "load", Store: "store", GlobalLd: "gld", GlobalSt: "gst",
	MemSize: "memsize", MemGrow: "memgrow",
	Call: "call", CallInd: "callind", CallHost: "callhost",
	Jump: "jump", Cond: "cond", CondCmp: "condcmp", BrTable: "brtable",
	Ret: "ret", Trap: "trap",
}

// LoadKind describes the width and extension of a memory access.
type LoadKind uint8

// Load kinds.
const (
	L32 LoadKind = iota // 32-bit int
	L64                 // 64-bit int
	L8S
	L8U
	L16S
	L16U
	L32S // 32->64 sign extending load
	L32U // 32->64 zero extending load
	LF32
	LF64
)

// Bytes returns the access width in bytes.
func (k LoadKind) Bytes() uint32 {
	switch k {
	case L8S, L8U:
		return 1
	case L16S, L16U:
		return 2
	case L32, L32S, L32U, LF32:
		return 4
	}
	return 8
}

// Ins is one IR instruction.
type Ins struct {
	Op   Op
	Dst  VReg
	A, B VReg
	// Extra is the third operand of Select.
	Extra VReg
	Imm   int64
	F64   float64
	W     uint8 // integer width in bytes (4 or 8); for F ops the float width
	CC    CC
	Kind  LoadKind
	Off   int32 // load/store displacement
	// Call fields.
	Callee  int
	SigID   int
	Args    []VReg
	Rets    []VReg // multi-value ready; MVP uses 0 or 1
	Targets []int
	// Unsigned marks unsigned conversion variants.
	Unsigned bool
}

func (in *Ins) String() string {
	s := opNames[in.Op]
	if in.CC != CCNone {
		s += "." + in.CC.String()
	}
	if in.W != 0 {
		s += fmt.Sprintf(".w%d", in.W)
	}
	var parts []string
	if in.Dst != NoV {
		parts = append(parts, fmt.Sprintf("v%d =", in.Dst))
	}
	parts = append(parts, s)
	if in.A != NoV {
		parts = append(parts, fmt.Sprintf("v%d", in.A))
	}
	if in.B != NoV {
		parts = append(parts, fmt.Sprintf("v%d", in.B))
	}
	if in.Extra != NoV {
		parts = append(parts, fmt.Sprintf("v%d", in.Extra))
	}
	if in.Op == Const {
		parts = append(parts, fmt.Sprintf("%d", in.Imm))
	}
	if in.Op == FConst {
		parts = append(parts, fmt.Sprintf("%g", in.F64))
	}
	if in.Op == Load || in.Op == Store {
		parts = append(parts, fmt.Sprintf("off=%d", in.Off))
	}
	if len(in.Args) > 0 {
		parts = append(parts, fmt.Sprintf("args=%v", in.Args))
	}
	if len(in.Targets) > 0 {
		parts = append(parts, fmt.Sprintf("-> %v", in.Targets))
	}
	return strings.Join(parts, " ")
}

// IsTerminator reports whether the op ends a basic block.
func (o Op) IsTerminator() bool {
	switch o {
	case Jump, Cond, CondCmp, BrTable, Ret, Trap:
		return true
	}
	return false
}

// IsCall reports whether the op is any kind of call. MemGrow counts: it is
// emitted as a host call and clobbers the argument/result registers.
func (o Op) IsCall() bool {
	return o == Call || o == CallInd || o == CallHost || o == MemGrow
}

// Block is a basic block.
type Block struct {
	ID  int
	Ins []Ins
}

// Term returns the block's terminator.
func (b *Block) Term() *Ins {
	if len(b.Ins) == 0 {
		return nil
	}
	t := &b.Ins[len(b.Ins)-1]
	if !t.Op.IsTerminator() {
		return nil
	}
	return t
}

// Succs returns the successor block ids.
func (b *Block) Succs() []int {
	t := b.Term()
	if t == nil {
		return nil
	}
	switch t.Op {
	case Jump, Cond, CondCmp, BrTable:
		return t.Targets
	}
	return nil
}

// Func is an IR function.
type Func struct {
	Name    string
	Blocks  []*Block
	NumV    int     // number of virtual registers
	Class   []Class // class per vreg
	Params  []VReg  // parameter vregs in order
	RetType Class   // class of return value (ignored if no returns)
	HasRet  bool
	// LoopDepth[blockID] is the nesting depth, used for spill costs.
	LoopDepth []int
	// SigID is the function's signature id (for indirect call tables).
	SigID int
	// Index is the function's index in module space.
	Index int
}

// NewV allocates a fresh vreg of class c.
func (f *Func) NewV(c Class) VReg {
	f.Class = append(f.Class, c)
	f.NumV++
	return VReg(f.NumV - 1)
}

// NewBlock appends a new empty block.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

// String renders the function for debugging.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s (%d vregs)\n", f.Name, f.NumV)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "b%d:\n", b.ID)
		for i := range b.Ins {
			fmt.Fprintf(&sb, "  %s\n", b.Ins[i].String())
		}
	}
	return sb.String()
}

// VisitUses calls fn for each vreg read by the instruction.
func (in *Ins) VisitUses(fn func(VReg)) {
	if in.A != NoV {
		fn(in.A)
	}
	if in.B != NoV {
		fn(in.B)
	}
	if in.Extra != NoV {
		fn(in.Extra)
	}
	for _, a := range in.Args {
		if a != NoV {
			fn(a)
		}
	}
}

// Defs returns the vreg defined by the instruction, or NoV.
func (in *Ins) Defs() VReg { return in.Dst }

// Liveness holds per-block live-in/live-out sets as bitsets.
type Liveness struct {
	In  []Bitset
	Out []Bitset
}

// Bitset is a dense bitset over vreg numbers.
type Bitset []uint64

// NewBitset returns a bitset sized for n bits.
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// Set sets bit i.
func (s Bitset) Set(i VReg) { s[i/64] |= 1 << (uint(i) % 64) }

// Clear clears bit i.
func (s Bitset) Clear(i VReg) { s[i/64] &^= 1 << (uint(i) % 64) }

// Has reports bit i.
func (s Bitset) Has(i VReg) bool { return s[i/64]&(1<<(uint(i)%64)) != 0 }

// OrWith sets s |= t, reporting whether s changed.
func (s Bitset) OrWith(t Bitset) bool {
	changed := false
	for i := range s {
		n := s[i] | t[i]
		if n != s[i] {
			s[i] = n
			changed = true
		}
	}
	return changed
}

// Copy duplicates the set.
func (s Bitset) Copy() Bitset {
	c := make(Bitset, len(s))
	copy(c, s)
	return c
}

// ForEach calls fn for each set bit.
func (s Bitset) ForEach(fn func(VReg)) {
	for w, word := range s {
		for word != 0 {
			b := word & -word
			i := w*64 + trailingZeros(word)
			fn(VReg(i))
			word ^= b
		}
	}
}

func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }

// ComputeLoopDepth fills f.LoopDepth using back-edge detection: a back edge
// is an edge to a block with a smaller or equal id (lowering emits reducible
// CFGs with loop headers before their bodies).
func ComputeLoopDepth(f *Func) {
	n := len(f.Blocks)
	if cap(f.LoopDepth) < n {
		f.LoopDepth = make([]int, n)
	} else {
		f.LoopDepth = f.LoopDepth[:n]
		clear(f.LoopDepth)
	}
	// For each back edge (b -> h, h.ID <= b.ID), blocks in [h.ID, b.ID]
	// form a loop body superset; increment their depth.
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			if s <= b.ID {
				for i := s; i <= b.ID; i++ {
					f.LoopDepth[i]++
				}
			}
		}
	}
}
