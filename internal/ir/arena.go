package ir

import "math/bits"

// FuncArena owns the recyclable storage of one function under construction:
// the Func itself, its basic blocks (with their instruction slices), and
// carve buffers for the small per-instruction slices (call argument lists,
// branch target lists). A compile acquires an arena, lowers into it, and
// resets it for the next function; steady state allocates nothing.
//
// Blocks handed out by NewBlock stay owned by the arena even when an
// optimization pass (pruneUnreachable) drops them from f.Blocks, so their
// instruction capacity survives the reset.
type FuncArena struct {
	f      Func
	blocks []*Block // every block ever allocated, for capacity reuse
	nused  int      // blocks handed out since the last reset

	vbuf  []VReg // carve buffer for Ins.Args
	vused int
	tbuf  []int // carve buffer for Ins.Targets
	tused int
}

// Reset recycles the arena and returns a cleared Func whose slices reuse the
// previous compile's capacity.
func (a *FuncArena) Reset() *Func {
	for _, b := range a.blocks[:a.nused] {
		b.Ins = b.Ins[:0]
		b.ID = 0
	}
	a.nused = 0
	a.vused = 0
	a.tused = 0
	f := &a.f
	f.Name = ""
	f.Blocks = f.Blocks[:0]
	f.Class = f.Class[:0]
	f.Params = f.Params[:0]
	f.LoopDepth = f.LoopDepth[:0]
	f.NumV = 0
	f.RetType = GP
	f.HasRet = false
	f.SigID = 0
	f.Index = 0
	return f
}

// NewBlock appends a recycled (or fresh) empty block to the arena's Func.
func (a *FuncArena) NewBlock() *Block {
	var b *Block
	if a.nused < len(a.blocks) {
		b = a.blocks[a.nused]
	} else {
		b = &Block{}
		a.blocks = append(a.blocks, b)
	}
	a.nused++
	b.ID = len(a.f.Blocks)
	a.f.Blocks = append(a.f.Blocks, b)
	return b
}

// VRegs carves an n-element VReg slice from the arena. The slice is
// full-capacity-clipped so appends never alias a neighbouring carve.
func (a *FuncArena) VRegs(n int) []VReg {
	if n == 0 {
		return nil
	}
	if a.vused+n > len(a.vbuf) {
		a.vbuf = make([]VReg, max(4*(a.vused+n), 1024))
		a.vused = 0
	}
	s := a.vbuf[a.vused : a.vused+n : a.vused+n]
	a.vused += n
	return s
}

// Targets carves an n-element branch-target slice from the arena.
func (a *FuncArena) Targets(n int) []int {
	if n == 0 {
		return nil
	}
	if a.tused+n > len(a.tbuf) {
		a.tbuf = make([]int, max(4*(a.tused+n), 1024))
		a.tused = 0
	}
	s := a.tbuf[a.tused : a.tused+n : a.tused+n]
	a.tused += n
	return s
}

// LivenessScratch recycles the dataflow state of ComputeLiveness: the four
// per-block bitset rows (in/out/use/def) live in one contiguous word arena.
type LivenessScratch struct {
	lv    Liveness
	use   []Bitset
	def   []Bitset
	words []uint64
}

// rows reslices the word arena into n bitset rows of w words each, clearing
// them, and grows the backing arrays to n block entries.
func (s *LivenessScratch) init(n, w int) {
	need := 4 * n * w
	if cap(s.words) < need {
		s.words = make([]uint64, need)
	}
	s.words = s.words[:need]
	clear(s.words)
	grow := func(bs []Bitset) []Bitset {
		if cap(bs) < n {
			return make([]Bitset, n)
		}
		return bs[:n]
	}
	s.lv.In = grow(s.lv.In)
	s.lv.Out = grow(s.lv.Out)
	s.use = grow(s.use)
	s.def = grow(s.def)
	for i := 0; i < n; i++ {
		base := 4 * i * w
		s.lv.In[i] = s.words[base : base+w]
		s.lv.Out[i] = s.words[base+w : base+2*w]
		s.use[i] = s.words[base+2*w : base+3*w]
		s.def[i] = s.words[base+3*w : base+4*w]
	}
}

// ComputeLiveness runs backward dataflow and returns live-in/out per block.
// The returned Liveness aliases a fresh scratch; use a LivenessScratch to
// recycle the storage across compiles.
func ComputeLiveness(f *Func) *Liveness {
	return new(LivenessScratch).ComputeLiveness(f)
}

// ComputeLiveness is ComputeLiveness into the scratch's recycled storage.
// The result is valid until the next call on the same scratch.
func (s *LivenessScratch) ComputeLiveness(f *Func) *Liveness {
	n := len(f.Blocks)
	w := (f.NumV + 63) / 64
	s.init(n, w)
	lv := &s.lv
	for i, b := range f.Blocks {
		for j := range b.Ins {
			in := &b.Ins[j]
			in.VisitUses(func(v VReg) {
				if !s.def[i].Has(v) {
					s.use[i].Set(v)
				}
			})
			if d := in.Defs(); d != NoV {
				s.def[i].Set(d)
			}
		}
	}
	// Iterate to fixpoint (reverse order speeds convergence). newIn is a
	// stack buffer for small functions; heap for huge ones.
	var newInArr [64]uint64
	var newIn Bitset
	if w <= len(newInArr) {
		newIn = newInArr[:w]
	} else {
		newIn = make(Bitset, w)
	}
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := f.Blocks[i]
			for _, su := range b.Succs() {
				if lv.Out[i].OrWith(lv.In[su]) {
					changed = true
				}
			}
			// in = use ∪ (out - def)
			copy(newIn, lv.Out[i])
			for wi := range newIn {
				newIn[wi] &^= s.def[i][wi]
				newIn[wi] |= s.use[i][wi]
			}
			if lv.In[i].OrWith(newIn) {
				changed = true
			}
		}
	}
	return lv
}

// Count returns the number of set bits.
func (s Bitset) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// CopyInto copies s into dst (same length) and returns dst.
func (s Bitset) CopyInto(dst Bitset) Bitset {
	copy(dst, s)
	return dst
}
