package ir

import "testing"

func TestLiveness(t *testing.T) {
	// b0: v0 = const; cond -> b1, b2
	// b1: v1 = add v0, v0; ret v1
	// b2: ret v0
	f := &Func{Name: "t"}
	v0 := f.NewV(GP)
	v1 := f.NewV(GP)
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b0.Ins = []Ins{
		{Op: Const, Dst: v0, A: NoV, B: NoV, Extra: NoV, Imm: 1},
		{Op: Cond, Dst: NoV, A: v0, B: NoV, Extra: NoV, Targets: []int{1, 2}},
	}
	b1.Ins = []Ins{
		{Op: Add, Dst: v1, A: v0, B: v0, Extra: NoV, W: 4},
		{Op: Ret, Dst: NoV, A: v1, B: NoV, Extra: NoV},
	}
	b2.Ins = []Ins{{Op: Ret, Dst: NoV, A: v0, B: NoV, Extra: NoV}}
	lv := ComputeLiveness(f)
	if !lv.Out[0].Has(v0) {
		t.Error("v0 must be live-out of b0")
	}
	if !lv.In[1].Has(v0) || !lv.In[2].Has(v0) {
		t.Error("v0 must be live-in to both successors")
	}
	if lv.In[1].Has(v1) {
		t.Error("v1 is defined in b1, not live-in")
	}
}

func TestLoopDepth(t *testing.T) {
	f := &Func{Name: "loop"}
	b0 := f.NewBlock()
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b0.Ins = []Ins{{Op: Jump, Dst: NoV, A: NoV, B: NoV, Extra: NoV, Targets: []int{1}}}
	b1.Ins = []Ins{{Op: Cond, Dst: NoV, A: NoV, B: NoV, Extra: NoV, Targets: []int{1, 2}}}
	b2.Ins = []Ins{{Op: Ret, Dst: NoV, A: NoV, B: NoV, Extra: NoV}}
	ComputeLoopDepth(f)
	if f.LoopDepth[1] != 1 {
		t.Errorf("b1 depth = %d, want 1", f.LoopDepth[1])
	}
	if f.LoopDepth[2] != 0 {
		t.Errorf("b2 depth = %d, want 0", f.LoopDepth[2])
	}
}

func TestBitset(t *testing.T) {
	s := NewBitset(100)
	s.Set(3)
	s.Set(77)
	if !s.Has(3) || !s.Has(77) || s.Has(4) {
		t.Error("bitset set/has broken")
	}
	s.Clear(3)
	if s.Has(3) {
		t.Error("clear broken")
	}
	var seen []VReg
	s.ForEach(func(v VReg) { seen = append(seen, v) })
	if len(seen) != 1 || seen[0] != 77 {
		t.Errorf("foreach: %v", seen)
	}
	t2 := NewBitset(100)
	t2.Set(5)
	if !s.OrWith(t2) || !s.Has(5) {
		t.Error("orwith broken")
	}
}

func TestCCNegate(t *testing.T) {
	for _, c := range []CC{CCEq, CCNe, CCLt, CCLe, CCGt, CCGe, CCLtU, CCLeU, CCGtU, CCGeU} {
		if c.Negate().Negate() != c {
			t.Errorf("negate not involutive for %v", c)
		}
	}
}
