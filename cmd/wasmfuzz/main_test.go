package main

import (
	"os"
	"reflect"
	"testing"
)

func TestParseEngines(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"native", []string{"native"}},
		{"native, chrome ,firefox", []string{"native", "chrome", "firefox"}},
		{",,", nil},
	}
	for _, tc := range cases {
		if got := parseEngines(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("parseEngines(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// A tiny end-to-end run: two seeds through the real oracle must agree and
// exit 0. This keeps the CLI's flag resolution and loop wired under plain
// `go test ./...` without the cost of a full fuzz-smoke range.
func TestRunTwoSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("full oracle matrix is not short")
	}
	if code := run([]string{"-seeds", "2", "-seed", "1"}, os.Stdout, os.Stderr); code != 0 {
		t.Fatalf("run exited %d, want 0", code)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if code := run([]string{"-seeds", "nope"}, os.Stdout, os.Stderr); code != 2 {
		t.Fatalf("bad -seeds exited %d, want 2", code)
	}
	if code := run([]string{"-seed", "0"}, os.Stdout, os.Stderr); code != 2 {
		t.Fatalf("-seed 0 exited %d, want 2", code)
	}
}
