// Command wasmfuzz is the differential wasm fuzzing loop: it generates
// seeded structured modules (internal/fuzzgen), runs each through the
// reference interpreter and the full engine × dispatch × fidelity candidate
// matrix, and reports any divergence. With -minimize (the default) a
// diverging module is shrunk to a minimal reproducer and written into the
// committed regression corpus, where TestCorpusReplay replays it on every
// `go test ./...` forever after.
//
// Usage:
//
//	wasmfuzz [-seeds N] [-seed S] [-engines native,chrome] [-minimize=false]
//
// Seed count and starting seed also resolve from $REPRO_FUZZ_SEEDS and
// $REPRO_FUZZ_SEED (flag > environment > default, like every other knob).
// Exit status: 0 all seeds agree, 1 divergence found, 2 usage or
// infrastructure error.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/config"
	"repro/internal/fuzzgen"
	"repro/internal/wasm"
)

const (
	defaultSeeds = 100
	defaultSeed  = 1
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("wasmfuzz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seedsFlag := fs.String("seeds", "", fmt.Sprintf("number of seeds to run (default $%s, else %d)", config.EnvFuzzSeeds, defaultSeeds))
	seedFlag := fs.String("seed", "", fmt.Sprintf("first seed of the range (default $%s, else %d)", config.EnvFuzzSeed, defaultSeed))
	enginesFlag := fs.String("engines", "", "comma-separated engines to oracle (default "+strings.Join(fuzzgen.DefaultEngines(), ",")+")")
	minimize := fs.Bool("minimize", true, "shrink a diverging module and write it into -corpus")
	corpusDir := fs.String("corpus", filepath.Join("internal", "fuzzgen", "testdata", "corpus"),
		"directory minimized reproducers are written to")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	seeds, err := config.ParseFuzzSeeds(config.String(*seedsFlag, config.EnvFuzzSeeds, ""))
	if err != nil {
		fmt.Fprintln(stderr, "wasmfuzz:", err)
		return 2
	}
	if seeds == 0 {
		seeds = defaultSeeds
	}
	first, err := config.ParseFuzzSeed(config.String(*seedFlag, config.EnvFuzzSeed, ""))
	if err != nil {
		fmt.Fprintln(stderr, "wasmfuzz:", err)
		return 2
	}
	if first == 0 {
		first = defaultSeed
	}
	cfg := fuzzgen.DiffConfig{Engines: parseEngines(*enginesFlag)}

	ctx := context.Background()
	divergences, skips := 0, 0
	for i := 0; i < seeds; i++ {
		seed := first + uint64(i)
		opt := fuzzgen.Options{Traps: seed%2 == 0}
		v, err := fuzzgen.RunSeed(ctx, seed, opt, cfg)
		if err != nil {
			fmt.Fprintf(stderr, "wasmfuzz: seed %d: oracle infrastructure error: %v\n", seed, err)
			return 2
		}
		switch {
		case v.Skipped != "":
			skips++
			fmt.Fprintf(stderr, "wasmfuzz: seed %d skipped: %s\n", seed, v.Skipped)
		case !v.OK():
			divergences++
			fmt.Fprintf(stdout, "wasmfuzz: DIVERGENCE at seed %d: %s\n", seed, v.Divergence)
			if *minimize {
				path, err := minimizeAndCommit(ctx, seed, opt, cfg, v, *corpusDir)
				if err != nil {
					fmt.Fprintf(stderr, "wasmfuzz: seed %d: minimizing: %v\n", seed, err)
				} else {
					fmt.Fprintf(stdout, "wasmfuzz: minimized reproducer written to %s\n", path)
				}
			}
		}
		if (i+1)%50 == 0 || i+1 == seeds {
			fmt.Fprintf(stderr, "wasmfuzz: %d/%d seeds, %d divergences, %d skips\n", i+1, seeds, divergences, skips)
		}
	}
	if divergences > 0 {
		fmt.Fprintf(stdout, "wasmfuzz: %d of %d seeds diverged\n", divergences, seeds)
		return 1
	}
	fmt.Fprintf(stdout, "wasmfuzz: all %d seeds agree across the engine matrix\n", seeds)
	return 0
}

// parseEngines splits the -engines flag; empty means the oracle's default
// matrix (signaled to DiffConfig as nil).
func parseEngines(v string) []string {
	if v == "" {
		return nil
	}
	var out []string
	for _, e := range strings.Split(v, ",") {
		if e = strings.TrimSpace(e); e != "" {
			out = append(out, e)
		}
	}
	return out
}

// minimizeAndCommit shrinks the diverging module for seed while the same
// variant and field keep diverging, then writes the minimized bytes into the
// corpus under their content-addressed name.
func minimizeAndCommit(ctx context.Context, seed uint64, opt fuzzgen.Options, cfg fuzzgen.DiffConfig, v *fuzzgen.Verdict, dir string) (string, error) {
	orig := v.Divergence
	small := fuzzgen.Shrink(fuzzgen.Generate(seed, opt), func(c *wasm.Module) bool {
		vv, err := fuzzgen.Diff(ctx, c, cfg)
		return err == nil && vv.Divergence != nil &&
			vv.Divergence.Variant == orig.Variant && vv.Divergence.Field == orig.Field
	})
	return fuzzgen.WriteCorpus(dir, wasm.Encode(small))
}
