// Command benchtrend compares BENCH_ci.json artifacts (cmd/benchjson
// output) across runs and gates on performance regressions: the trend
// report the ROADMAP's trajectory tracking calls for. Given two or more
// reports in oldest-to-newest order it prints, for each adjacent pair, the
// per-metric deltas — sim-inst/s throughput, compile ns/op, allocs/op, and
// every other metric the artifacts carry — and exits non-zero when the
// newest pair worsens any metric past the threshold in its cost direction
// (throughput must not fall, costs must not rise).
//
// Usage:
//
//	benchtrend [-threshold 0.10] [-all|-median] [-v] old.json [...] new.json
//
// Exit status: 0 = no gated regression; 1 = regression past the threshold;
// 2 = usage or artifact decode error. Metrics present only in the older
// report are listed as missing (lost coverage) but never fail the gate;
// gate on them by eye, or keep benchmark names stable. -all gates every
// adjacent pair instead of only the newest; -v lists unflagged metrics too.
//
// -median switches to rolling-window mode: the last path is the candidate
// and every earlier path is a baseline artifact (oldest first). The newest
// three baselines are collapsed per-metric into their median and the
// candidate is gated against that synthetic report — one noisy CI run in
// the window can no longer fail (or mask) the gate by itself. Extra
// baselines beyond three are accepted and ignored, so callers can pass
// however many artifacts a download step found.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"repro/internal/perf"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchtrend", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 0.10, "fractional worsening that counts as a regression")
	all := fs.Bool("all", false, "gate every adjacent pair, not just the newest")
	median := fs.Bool("median", false, "gate the last artifact against the per-metric median of the newest 3 preceding ones")
	verbose := fs.Bool("v", false, "list unflagged metrics too")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: benchtrend [-threshold 0.10] [-all|-median] [-v] old.json [...] new.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	paths := fs.Args()
	if len(paths) < 2 {
		fs.Usage()
		return 2
	}

	reports := make([]*perf.BenchReport, len(paths))
	for i, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			fmt.Fprintln(stderr, "benchtrend:", err)
			return 2
		}
		if reports[i], err = perf.ParseBenchReport(data); err != nil {
			fmt.Fprintf(stderr, "benchtrend: %s: %v\n", p, err)
			return 2
		}
	}

	if *median {
		// Rolling window: newest 3 baselines -> median -> gate candidate.
		base, cand := reports[:len(reports)-1], reports[len(reports)-1]
		basePaths := paths[:len(paths)-1]
		if len(base) > 3 {
			base, basePaths = base[len(base)-3:], basePaths[len(basePaths)-3:]
		}
		syn := perf.MedianBaseline(base)
		label := fmt.Sprintf("median(%s)", strings.Join(basePaths, ", "))
		tr := perf.CompareBench(syn, cand, *threshold)
		printTrend(stdout, label, paths[len(paths)-1], tr, true, *verbose)
		failed := tr.Regressions > 0
		if tr.Compared == 0 && len(syn.Benchmarks) > 0 {
			fmt.Fprintf(stdout, "   GATE FAILED: no metric of %s survives into %s — renamed everything, or empty artifact?\n",
				label, paths[len(paths)-1])
			failed = true
		}
		if failed {
			return 1
		}
		return 0
	}

	gateFailed := false
	for i := 0; i+1 < len(reports); i++ {
		tr := perf.CompareBench(reports[i], reports[i+1], *threshold)
		gated := *all || i == len(reports)-2
		printTrend(stdout, paths[i], paths[i+1], tr, gated, *verbose)
		if gated && tr.Regressions > 0 {
			gateFailed = true
		}
		// A gated pair with nothing to compare is a blackout, not a pass:
		// a wholesale benchmark rename (or an artifact that parsed to
		// nothing) would otherwise disable the gate with exit 0 — and the
		// empty artifact would become the next run's baseline, keeping it
		// disabled. Individual renames are tolerated (Missing); losing
		// every metric at once is not.
		if gated && tr.Compared == 0 && len(reports[i].Benchmarks) > 0 {
			fmt.Fprintf(stdout, "   GATE FAILED: no metric of %s survives into %s — renamed everything, or empty artifact?\n",
				paths[i], paths[i+1])
			gateFailed = true
		}
	}
	if gateFailed {
		return 1
	}
	return 0
}

// printTrend renders one adjacent-pair comparison. Flagged deltas (and
// missing metrics) always print; -v adds the neutral ones.
func printTrend(w io.Writer, oldPath, newPath string, tr *perf.Trend, gated, verbose bool) {
	gate := "informational"
	if gated {
		gate = "gated"
	}
	fmt.Fprintf(w, "== benchtrend: %s -> %s (threshold %.0f%%, %s)\n",
		oldPath, newPath, tr.Threshold*100, gate)
	for _, d := range tr.Deltas {
		switch {
		case d.Missing:
			fmt.Fprintf(w, "   MISSING    %-28s %-12s %.6g -> (absent from newer report)\n",
				d.Bench, d.Metric, d.Old)
		case d.Regressed && math.IsInf(d.Worse, 1):
			fmt.Fprintf(w, "   REGRESSED  %-28s %-12s %.6g -> %.6g (cost appeared from a zero baseline)\n",
				d.Bench, d.Metric, d.Old, d.New)
		case d.Regressed:
			fmt.Fprintf(w, "   REGRESSED  %-28s %-12s %.6g -> %.6g (%.2fx, %+.1f%% worse)\n",
				d.Bench, d.Metric, d.Old, d.New, d.Ratio, d.Worse*100)
		case d.Improved && math.IsInf(d.Worse, -1):
			fmt.Fprintf(w, "   improved   %-28s %-12s %.6g -> %.6g (from a zero baseline)\n",
				d.Bench, d.Metric, d.Old, d.New)
		case d.Improved:
			fmt.Fprintf(w, "   improved   %-28s %-12s %.6g -> %.6g (%.2fx)\n",
				d.Bench, d.Metric, d.Old, d.New, d.Ratio)
		case verbose:
			fmt.Fprintf(w, "   ok         %-28s %-12s %.6g -> %.6g\n",
				d.Bench, d.Metric, d.Old, d.New)
		}
	}
	fmt.Fprintf(w, "   %d compared: %d regressed, %d improved, %d missing\n",
		tr.Compared, tr.Regressions, tr.Improvements, tr.Missing)
}
