package main

// End-to-end table test for the trend gate: the acceptance scenario — an
// injected 10% sim-inst/s regression between two BENCH_ci.json artifacts
// must exit non-zero — plus improvement, missing-metric, multi-file, and
// decode-error inputs.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeReport writes one BENCH_ci.json-shaped artifact and returns its path.
func writeReport(t *testing.T, dir, name, body string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const baseReport = `{
  "schema": "repro-bench/v1",
  "benchmarks": [
    {"name": "SimThroughput", "iterations": 1, "metrics": {"sim-inst/s": 200000000}},
    {"name": "CompileAllocs", "iterations": 1, "metrics": {"ns/op": 4000000, "allocs/op": 300}}
  ]
}`

func TestBenchtrend(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", baseReport)

	cases := []struct {
		name     string
		newBody  string
		args     []string // extra args before the file pair
		wantExit int
		wantOut  []string
	}{
		{
			name: "injected 10 percent sim-inst/s regression fails the gate",
			newBody: `{"schema":"repro-bench/v1","benchmarks":[
				{"name":"SimThroughput","iterations":1,"metrics":{"sim-inst/s":180000000}},
				{"name":"CompileAllocs","iterations":1,"metrics":{"ns/op":4000000,"allocs/op":300}}]}`,
			wantExit: 1,
			wantOut:  []string{"REGRESSED", "SimThroughput", "sim-inst/s"},
		},
		{
			name: "improvement passes",
			newBody: `{"schema":"repro-bench/v1","benchmarks":[
				{"name":"SimThroughput","iterations":1,"metrics":{"sim-inst/s":260000000}},
				{"name":"CompileAllocs","iterations":1,"metrics":{"ns/op":2000000,"allocs/op":150}}]}`,
			wantExit: 0,
			wantOut:  []string{"improved", "3 compared: 0 regressed, 3 improved, 0 missing"},
		},
		{
			name: "missing metric is reported but passes",
			newBody: `{"schema":"repro-bench/v1","benchmarks":[
				{"name":"SimThroughput","iterations":1,"metrics":{"sim-inst/s":200000000}},
				{"name":"CompileAllocs","iterations":1,"metrics":{"ns/op":4000000}}]}`,
			wantExit: 0,
			wantOut:  []string{"MISSING", "allocs/op", "1 missing"},
		},
		{
			name: "allocs/op cost regression fails the gate",
			newBody: `{"schema":"repro-bench/v1","benchmarks":[
				{"name":"SimThroughput","iterations":1,"metrics":{"sim-inst/s":200000000}},
				{"name":"CompileAllocs","iterations":1,"metrics":{"ns/op":4000000,"allocs/op":400}}]}`,
			wantExit: 1,
			wantOut:  []string{"REGRESSED", "CompileAllocs", "allocs/op"},
		},
		{
			name: "sub-threshold drift passes",
			newBody: `{"schema":"repro-bench/v1","benchmarks":[
				{"name":"SimThroughput","iterations":1,"metrics":{"sim-inst/s":195000000}},
				{"name":"CompileAllocs","iterations":1,"metrics":{"ns/op":4100000,"allocs/op":301}}]}`,
			wantExit: 0,
			wantOut:  []string{"3 compared: 0 regressed, 0 improved, 0 missing"},
		},
		{
			name: "total comparison blackout fails the gate",
			newBody: `{"schema":"repro-bench/v1","benchmarks":[
				{"name":"EverythingRenamed","iterations":1,"metrics":{"sim-inst/s":200000000}}]}`,
			wantExit: 1,
			wantOut:  []string{"GATE FAILED", "0 regressed"},
		},
		{
			name:     "empty artifact fails the gate",
			newBody:  `{"schema":"repro-bench/v1","benchmarks":[]}`,
			wantExit: 1,
			wantOut:  []string{"GATE FAILED"},
		},
		{
			name: "higher threshold tolerates the same drop",
			newBody: `{"schema":"repro-bench/v1","benchmarks":[
				{"name":"SimThroughput","iterations":1,"metrics":{"sim-inst/s":180000000}},
				{"name":"CompileAllocs","iterations":1,"metrics":{"ns/op":4000000,"allocs/op":300}}]}`,
			args:     []string{"-threshold", "0.25"},
			wantExit: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			newP := writeReport(t, t.TempDir(), "new.json", tc.newBody)
			var out, errb bytes.Buffer
			code := run(append(tc.args, base, newP), &out, &errb)
			if code != tc.wantExit {
				t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s", code, tc.wantExit, out.String(), errb.String())
			}
			for _, want := range tc.wantOut {
				if !strings.Contains(out.String(), want) {
					t.Errorf("output missing %q:\n%s", want, out.String())
				}
			}
		})
	}
}

// TestBenchtrendGatesOnlyNewestPair pins the multi-file trajectory
// behavior: an old regression that has since recovered does not fail the
// gate, unless -all asks for it.
func TestBenchtrendGatesOnlyNewestPair(t *testing.T) {
	dir := t.TempDir()
	a := writeReport(t, dir, "a.json", baseReport)
	b := writeReport(t, dir, "b.json", `{"schema":"repro-bench/v1","benchmarks":[
		{"name":"SimThroughput","iterations":1,"metrics":{"sim-inst/s":150000000}}]}`)
	c := writeReport(t, dir, "c.json", `{"schema":"repro-bench/v1","benchmarks":[
		{"name":"SimThroughput","iterations":1,"metrics":{"sim-inst/s":210000000}}]}`)

	var out bytes.Buffer
	if code := run([]string{a, b, c}, &out, &out); code != 0 {
		t.Fatalf("recovered trajectory failed the gate (exit %d):\n%s", code, out.String())
	}
	out.Reset()
	if code := run([]string{"-all", a, b, c}, &out, &out); code != 1 {
		t.Fatalf("-all did not gate the historical regression (exit %d):\n%s", code, out.String())
	}
}

func TestBenchtrendUsageAndDecodeErrors(t *testing.T) {
	dir := t.TempDir()
	good := writeReport(t, dir, "good.json", baseReport)
	bad := writeReport(t, dir, "bad.json", `{"schema":"other/v2"}`)

	var out bytes.Buffer
	if code := run([]string{good}, &out, &out); code != 2 {
		t.Fatalf("single file exit = %d, want 2", code)
	}
	if code := run([]string{good, bad}, &out, &out); code != 2 {
		t.Fatalf("bad schema exit = %d, want 2", code)
	}
	if code := run([]string{good, filepath.Join(dir, "absent.json")}, &out, &out); code != 2 {
		t.Fatalf("missing file exit = %d, want 2", code)
	}
}

// TestBenchtrendMedianWindow pins -median mode: the candidate is gated
// against the per-metric median of the preceding artifacts, so one noisy
// baseline neither fails nor masks the gate, windows wider than 3 drop the
// oldest members, and a real regression against the median still fails.
func TestBenchtrendMedianWindow(t *testing.T) {
	dir := t.TempDir()
	sim := func(name string, v float64) string {
		return writeReport(t, dir, name,
			`{"schema":"repro-bench/v1","benchmarks":[{"name":"SimThroughput","iterations":1,"metrics":{"sim-inst/s":`+
				fmt.Sprint(v)+`}}]}`)
	}
	b1 := sim("b1.json", 200e6)
	noisy := sim("b2.json", 5e6) // one bad run in the window
	b3 := sim("b3.json", 210e6)

	// Candidate within 10% of the median(200M, 5M, 210M) = 200M passes
	// even though it is far below the window mean.
	cand := sim("cand.json", 190e6)
	var out bytes.Buffer
	if got := run([]string{"-median", b1, noisy, b3, cand}, &out, &out); got != 0 {
		t.Fatalf("exit = %d with one noisy baseline, want 0\n%s", got, out.String())
	}
	if !strings.Contains(out.String(), "median(") {
		t.Errorf("output does not label the median baseline:\n%s", out.String())
	}

	// A real 25% drop against the median fails.
	bad := sim("bad.json", 150e6)
	out.Reset()
	if got := run([]string{"-median", b1, noisy, b3, bad}, &out, &out); got != 1 {
		t.Fatalf("exit = %d for real regression against median, want 1\n%s", got, out.String())
	}

	// Window wider than 3: the oldest (terrible) artifact is dropped, so
	// the median stays at the steady level and the regression still fails.
	out.Reset()
	older := sim("b0.json", 1e6)
	if got := run([]string{"-median", older, b1, noisy, b3, bad}, &out, &out); got != 1 {
		t.Fatalf("exit = %d with >3 baselines, want 1\n%s", got, out.String())
	}
	if strings.Contains(out.String(), "b0.json") {
		t.Errorf("dropped baseline b0.json still appears in the label:\n%s", out.String())
	}

	// Two-artifact degenerate case: -median with one baseline is a plain
	// pairwise gate.
	out.Reset()
	if got := run([]string{"-median", b1, cand}, &out, &out); got != 0 {
		t.Fatalf("exit = %d for single-baseline median, want 0\n%s", got, out.String())
	}
}
