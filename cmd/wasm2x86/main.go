// Command wasm2x86 compiles a mini-C program for each engine and dumps the
// generated x86-64 listings (the paper's Figure 7 view). With no argument it
// dumps the §5 matmul case study.
//
// Usage:
//
//	wasm2x86 [-func name] [-engine native|chrome|firefox|asmjs-chrome] [file.c]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/codegen"
	"repro/internal/pipeline"
	"repro/internal/spec"
)

func main() {
	fn := flag.String("func", "matmul", "function to disassemble ('' = whole module stats)")
	engine := flag.String("engine", "", "engine to use (default: native and chrome)")
	flag.Parse()

	src := spec.MatmulSource(16, 18, 19)
	if flag.NArg() > 0 {
		b, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "wasm2x86:", err)
			os.Exit(1)
		}
		src = string(b)
	}

	var cfgs []*codegen.EngineConfig
	if *engine == "" {
		cfgs = []*codegen.EngineConfig{codegen.Native(), codegen.Chrome()}
	} else {
		cfg, err := codegen.Engine(*engine)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wasm2x86:", err)
			os.Exit(2)
		}
		cfgs = []*codegen.EngineConfig{cfg}
	}

	for _, cfg := range cfgs {
		cm, err := pipeline.Compile(context.Background(), &pipeline.Request{Module: src, Config: cfg})
		if err != nil {
			fmt.Fprintln(os.Stderr, "wasm2x86:", err)
			os.Exit(1)
		}
		fmt.Printf("=== %s: %d bytes of code, %d spills ===\n", cfg.Name, cm.Prog.CodeBytes, cm.TotalSpills)
		if *fn == "" {
			for _, st := range cm.Stats {
				fmt.Printf("  %-20s %5d instructions %6d bytes %3d spills\n",
					st.Name, st.Insts, st.CodeBytes, st.Spills)
			}
			continue
		}
		d, ok := cm.DisasmFunc(*fn)
		if !ok {
			fmt.Fprintf(os.Stderr, "wasm2x86: no function %q\n", *fn)
			os.Exit(1)
		}
		fmt.Println(d)
	}
}
