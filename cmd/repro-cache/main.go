// Command repro-cache inspects and garbage-collects the disk-backed
// artifact store (internal/pipeline) that every build path shares. The
// store honours the usual environment: REPRO_CACHE_DIR locates it (or
// disables it with "off"), REPRO_CACHE_MAX_BYTES sets the budget; the tool
// sees the same compiler-fingerprint subdirectory the running binary's
// builds would use.
//
// Usage:
//
//	repro-cache totals           # store location, entry count, size, budget
//	repro-cache list             # entries oldest-first: size, age, key
//	repro-cache gc [-max bytes]  # explicit eviction pass down to the budget
//	                             # (or -max) and stale temp-file reclamation
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/pipeline"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	cmd := flag.Arg(0)
	if cmd == "" {
		cmd = "totals"
	}
	switch cmd {
	case "totals":
		runTotals()
	case "list":
		runList()
	case "gc":
		runGC(flag.Args()[1:])
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: repro-cache [totals|list|gc [-max bytes]]\n")
	flag.PrintDefaults()
}

func mustStore() string {
	dir, ok := pipeline.StoreDir()
	if !ok {
		fmt.Fprintln(os.Stderr, "repro-cache: artifact store disabled (REPRO_CACHE_DIR=off or no writable cache dir)")
		os.Exit(1)
	}
	return dir
}

func runTotals() {
	dir := mustStore()
	arts, err := pipeline.ListArtifacts()
	if err != nil {
		fatal(err)
	}
	var total int64
	for _, a := range arts {
		total += a.Size
	}
	fmt.Printf("store:     %s\n", dir)
	fmt.Printf("artifacts: %d\n", len(arts))
	fmt.Printf("size:      %s\n", human(total))
	fmt.Printf("budget:    %s\n", human(pipeline.StoreBudget()))
}

func runList() {
	mustStore()
	arts, err := pipeline.ListArtifacts()
	if err != nil {
		fatal(err)
	}
	now := time.Now()
	fmt.Printf("%-10s %-12s %s\n", "size", "last-used", "key")
	for _, a := range arts {
		fmt.Printf("%-10s %-12s %s\n", human(a.Size), age(now.Sub(a.ModTime)), a.Key)
	}
	fmt.Printf("(%d artifacts, oldest first — the order an eviction sweep removes them)\n", len(arts))
}

func runGC(args []string) {
	fs := flag.NewFlagSet("gc", flag.ExitOnError)
	max := fs.Int64("max", 0, "target size in bytes (default: the configured budget)")
	fs.Parse(args)
	mustStore()
	removed, freed, err := pipeline.GCStore(*max)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("removed %d artifacts, freed %s\n", removed, human(freed))
}

// human renders a byte count with a binary-prefix unit.
func human(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

// age renders a duration coarsely (the LRU clock only needs a rough scale).
func age(d time.Duration) string {
	switch {
	case d < time.Minute:
		return fmt.Sprintf("%ds", int(d.Seconds()))
	case d < time.Hour:
		return fmt.Sprintf("%dm", int(d.Minutes()))
	case d < 24*time.Hour:
		return fmt.Sprintf("%dh", int(d.Hours()))
	}
	return fmt.Sprintf("%dd", int(d.Hours()/24))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repro-cache:", err)
	os.Exit(1)
}
