// Command repro-cache inspects and garbage-collects the disk-backed
// artifact store (internal/pipeline) that every build path shares. The
// store honours the usual environment: REPRO_CACHE_DIR locates it (or
// disables it with "off"), REPRO_CACHE_MAX_BYTES sets the budget; the tool
// sees the same compiler-fingerprint subdirectory the running binary's
// builds would use.
//
// Usage:
//
//	repro-cache totals           # store location, entry count, size, budget
//	repro-cache list             # entries oldest-first: size, age, key
//	repro-cache gc [-max bytes]  # explicit eviction pass down to the budget
//	                             # (or -max) and stale temp-file reclamation
//	repro-cache push [-remote URL]           # publish local artifacts to a
//	                                         # shared remote cache
//	repro-cache pull [-remote URL]           # fetch remote artifacts this
//	                                         # store is missing
//	repro-cache remote-totals [-remote URL]  # remote inventory per generation
//
// The remote subcommands talk to a repro-serve /artifact endpoint through
// the same client the build path uses — per-call deadlines, retries,
// sha256 verification of fetched bytes, and the circuit breaker all apply.
// -remote defaults to $REPRO_REMOTE_CACHE. Push and pull sync every
// compiler-fingerprint generation under the store root, not just this
// binary's (the tool never compiles, so its own generation is empty).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/config"
	"repro/internal/pipeline"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	cmd := flag.Arg(0)
	if cmd == "" {
		cmd = "totals"
	}
	switch cmd {
	case "totals":
		runTotals()
	case "list":
		runList()
	case "gc":
		runGC(flag.Args()[1:])
	case "push":
		runPush(flag.Args()[1:])
	case "pull":
		runPull(flag.Args()[1:])
	case "remote-totals":
		runRemoteTotals(flag.Args()[1:])
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: repro-cache [totals|list|gc [-max bytes]|push|pull|remote-totals [-remote URL]]\n")
	flag.PrintDefaults()
}

func mustStore() string {
	dir, ok := pipeline.StoreDir()
	if !ok {
		fmt.Fprintln(os.Stderr, "repro-cache: artifact store disabled (REPRO_CACHE_DIR=off or no writable cache dir)")
		os.Exit(1)
	}
	return dir
}

func runTotals() {
	dir := mustStore()
	arts, err := pipeline.ListArtifacts()
	if err != nil {
		fatal(err)
	}
	var total int64
	for _, a := range arts {
		total += a.Size
	}
	fmt.Printf("store:     %s\n", dir)
	fmt.Printf("artifacts: %d\n", len(arts))
	fmt.Printf("size:      %s\n", human(total))
	fmt.Printf("budget:    %s\n", human(pipeline.StoreBudget()))
}

func runList() {
	mustStore()
	arts, err := pipeline.ListArtifacts()
	if err != nil {
		fatal(err)
	}
	now := time.Now()
	fmt.Printf("%-10s %-12s %s\n", "size", "last-used", "key")
	for _, a := range arts {
		fmt.Printf("%-10s %-12s %s\n", human(a.Size), age(now.Sub(a.ModTime)), a.Key)
	}
	fmt.Printf("(%d artifacts, oldest first — the order an eviction sweep removes them)\n", len(arts))
}

func runGC(args []string) {
	fs := flag.NewFlagSet("gc", flag.ExitOnError)
	max := fs.Int64("max", 0, "target size in bytes (default: the configured budget)")
	fs.Parse(args)
	mustStore()
	removed, freed, err := pipeline.GCStore(*max)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("removed %d artifacts, freed %s\n", removed, human(freed))
}

// mustRemote resolves the remote cache URL (flag > $REPRO_REMOTE_CACHE)
// and builds the shared verified client.
func mustRemote(args []string, sub string) (*pipeline.Remote, []string) {
	fs := flag.NewFlagSet(sub, flag.ExitOnError)
	remote := fs.String("remote", "", "remote cache base URL (default $"+config.EnvRemoteCache+")")
	fs.Parse(args)
	base := config.String(*remote, config.EnvRemoteCache, "")
	switch base {
	case "", "off", "0", "none":
		fmt.Fprintf(os.Stderr, "repro-cache %s: no remote cache (set -remote or $%s)\n", sub, config.EnvRemoteCache)
		os.Exit(1)
	}
	return pipeline.NewRemote(base), fs.Args()
}

func runPush(args []string) {
	r, _ := mustRemote(args, "push")
	mustStore()
	gens, err := pipeline.Generations()
	if err != nil {
		fatal(err)
	}
	ctx := context.Background()
	var pushed, failed int
	var bytes int64
	for _, fp := range gens {
		arts, err := pipeline.ListArtifactsFP(fp)
		if err != nil {
			fatal(err)
		}
		for _, a := range arts {
			data, err := pipeline.ReadArtifact(fp, a.Key)
			if err != nil {
				failed++
				continue
			}
			if err := r.Put(ctx, fp, a.Key, data); err != nil {
				failed++
				fmt.Fprintf(os.Stderr, "repro-cache push: %s/%s: %v\n", fp, a.Key[:12], err)
				continue
			}
			pushed++
			bytes += a.Size
		}
	}
	fmt.Printf("pushed %d artifacts (%s) across %d generations, %d failed (breaker=%s)\n",
		pushed, human(bytes), len(gens), failed, r.Breaker())
	if failed > 0 {
		os.Exit(1)
	}
}

func runPull(args []string) {
	r, _ := mustRemote(args, "pull")
	mustStore()
	ctx := context.Background()
	inv, err := r.Totals(ctx, true)
	if err != nil {
		fatal(err)
	}
	var pulled, skipped, failed int
	var bytes int64
	for fp, info := range inv.Fingerprints {
		for _, key := range info.Keys {
			if pipeline.HasArtifact(fp, key) {
				skipped++
				continue
			}
			data, err := r.Get(ctx, fp, key)
			if err != nil {
				failed++
				fmt.Fprintf(os.Stderr, "repro-cache pull: %s/%s: %v\n", fp, key[:12], err)
				continue
			}
			if err := pipeline.WriteArtifact(fp, key, data); err != nil {
				failed++
				fmt.Fprintf(os.Stderr, "repro-cache pull: %s/%s: %v\n", fp, key[:12], err)
				continue
			}
			pulled++
			bytes += int64(len(data))
		}
	}
	fmt.Printf("pulled %d artifacts (%s), %d already present, %d failed (breaker=%s)\n",
		pulled, human(bytes), skipped, failed, r.Breaker())
	if failed > 0 {
		os.Exit(1)
	}
}

func runRemoteTotals(args []string) {
	r, _ := mustRemote(args, "remote-totals")
	inv, err := r.Totals(context.Background(), false)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("artifacts: %d\n", inv.Count)
	fmt.Printf("size:      %s\n", human(inv.Bytes))
	fps := make([]string, 0, len(inv.Fingerprints))
	for fp := range inv.Fingerprints {
		fps = append(fps, fp)
	}
	sort.Strings(fps)
	for _, fp := range fps {
		info := inv.Fingerprints[fp]
		fmt.Printf("  %s: %d artifacts, %s\n", fp, info.Count, human(info.Bytes))
	}
}

// human renders a byte count with a binary-prefix unit.
func human(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

// age renders a duration coarsely (the LRU clock only needs a rough scale).
func age(d time.Duration) string {
	switch {
	case d < time.Minute:
		return fmt.Sprintf("%ds", int(d.Seconds()))
	case d < time.Hour:
		return fmt.Sprintf("%dm", int(d.Minutes()))
	case d < 24*time.Hour:
		return fmt.Sprintf("%dh", int(d.Hours()))
	}
	return fmt.Sprintf("%dd", int(d.Hours()/24))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repro-cache:", err)
	os.Exit(1)
}
