// Command wasmrun compiles and runs a mini-C program under the Browsix-Wasm
// kernel, printing its output and the perf counters of the run. It is the
// CLI face of the same pipeline.Request the repro-serve daemon accepts over
// HTTP: flags resolve into one Request and pipeline.Do runs it.
//
// Usage:
//
//	wasmrun [-engine chrome] file.c [args...]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/codegen"
	"repro/internal/pipeline"
)

func main() {
	engine := flag.String("engine", "chrome", "engine: "+strings.Join(codegen.EngineNames(), ", "))
	fidelity := flag.String("fidelity", "", "simulation tier: exact, functional, sampled (default $REPRO_FIDELITY, else exact)")
	counters := flag.Bool("counters", true, "print perf counters after the run")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: wasmrun [-engine E] file.c [args...]")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "wasmrun:", err)
		os.Exit(1)
	}
	cfg, err := codegen.Engine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wasmrun:", err)
		os.Exit(2)
	}
	f, w, err := codegen.ResolveFidelity(*fidelity)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wasmrun:", err)
		os.Exit(2)
	}
	cfg.ApplyFidelity(f, w)

	res, err := pipeline.Do(context.Background(), &pipeline.Request{
		Module: string(src),
		Config: cfg,
		Argv:   append([]string{flag.Arg(0)}, flag.Args()[1:]...),
	})
	if err != nil {
		var te *pipeline.TimeoutError
		if errors.As(err, &te) {
			// A watchdog kill is a result, not a crash: report the partial
			// counters so the user sees how far the run got.
			fmt.Fprintf(os.Stderr, "wasmrun: %v\nwasmrun: partial counters at kill:\n%s\n", te, te.Partial.String())
			os.Exit(124)
		}
		fmt.Fprintln(os.Stderr, "wasmrun:", err)
		os.Exit(1)
	}
	// A one-shot CLI exits right after its single build: give the async
	// remote publish (if a remote cache is armed) a moment to land.
	pipeline.RemoteFlush(2 * time.Second)
	fmt.Print(res.Stdout)
	if *counters {
		c := res.Counters
		fmt.Fprintf(os.Stderr, "---\nengine=%s exit=%d time=%.3fms\n%s\nbrowsix-share=%.3f%%\n",
			cfg.Name, res.ExitCode, c.Seconds()*1000, c.String(), res.Proc.BrowsixShare()*100)
	}
	os.Exit(res.ExitCode)
}
