// Command runsuite runs the differential workload suites through the run
// pipeline from the command line — the CI fault-smoke entry point. With
// -degraded, individual workload failures (injected via $REPRO_FAULTS,
// watchdog kills via $REPRO_JOB_TIMEOUT / $REPRO_JOB_MAX_INSTS, or real
// bugs) become FAIL rows and a failure summary; the process still exits
// nonzero so CI sees the failure, but every surviving row is validated.
//
// Usage:
//
//	runsuite [-suite polybench|spec|all] [-short] [-degraded]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/codegen"
	"repro/internal/pipeline"
	"repro/internal/workloads"
)

func main() {
	suite := flag.String("suite", "polybench", "suite to run: polybench, spec, all")
	short := flag.Bool("short", false, "run the scaled-down short subsets")
	degraded := flag.Bool("degraded", false, "survive individual workload failures: report FAIL rows, exit nonzero")
	fidelity := flag.String("fidelity", "", "simulation tier: exact, functional, sampled (default $REPRO_FIDELITY, else exact)")
	flag.Parse()

	fid, windows, err := codegen.ResolveFidelity(*fidelity)
	if err != nil {
		fmt.Fprintln(os.Stderr, "runsuite:", err)
		os.Exit(2)
	}

	type job struct {
		name string
		ws   []*workloads.Workload
		cfgs []*codegen.EngineConfig
	}
	var jobs []job
	addPoly := func() {
		ws := workloads.Polybench()
		if *short {
			ws = workloads.ShortPolybench()
		}
		jobs = append(jobs, job{"polybench", ws, []*codegen.EngineConfig{codegen.Native(), codegen.Chrome()}})
	}
	addSpec := func() {
		ws := workloads.SPECCPU()
		if *short {
			ws = workloads.ShortSPEC()
		}
		jobs = append(jobs, job{"spec", ws, []*codegen.EngineConfig{codegen.Native(), codegen.Chrome(), codegen.Firefox()}})
	}
	switch *suite {
	case "polybench":
		addPoly()
	case "spec":
		addSpec()
	case "all":
		addPoly()
		addSpec()
	default:
		fmt.Fprintf(os.Stderr, "runsuite: unknown suite %q\n", *suite)
		os.Exit(2)
	}

	exit := 0
	for _, j := range jobs {
		for _, cfg := range j.cfgs {
			cfg.ApplyFidelity(fid, windows)
		}
		rep, err := workloads.RunDifferential(context.Background(), j.ws, j.cfgs, *degraded)
		if err != nil {
			fmt.Fprintf(os.Stderr, "runsuite: %s: %v\n", j.name, err)
			os.Exit(1)
		}
		ok := rep.Rows - len(rep.Failed)
		fmt.Printf("suite %s: %d/%d runs ok (%d workloads × %d engines) cache: %v\n",
			j.name, ok, rep.Rows, len(j.ws), len(j.cfgs), rep.Cache)
		for _, f := range rep.Failed {
			fmt.Printf("FAIL %s on %s\n", f.Workload, f.Engine)
		}
		if serr := rep.Err(); serr != nil {
			fmt.Fprintf(os.Stderr, "runsuite: %v\n", serr)
			exit = 1
		}
	}
	// Let trailing async artifact publishes reach the shared remote cache
	// (when one is armed) before the process exits; a non-drain only costs
	// fleet warmth, never the suite verdict.
	pipeline.RemoteFlush(5 * time.Second)
	pipeline.ReportTotals("runsuite")
	os.Exit(exit)
}
