// Command repro-serve is the compile-and-run daemon: it accepts
// pipeline.Request JSON over HTTP, compiles modules through the shared
// content-addressed build cache, executes them under the scheduler budget,
// and streams results back. Identical concurrent requests trigger exactly
// one compile (the pipeline's singleflight cache), admission is weighted
// fair per tenant, and SIGTERM/SIGINT drain gracefully: in-flight requests
// return their results before the process exits 0.
//
// Usage:
//
//	repro-serve [-addr :8080] [-slots N] [-queue N] [-tenants alice=4,bob=1]
//
// Every flag also reads its $REPRO_SERVE_* environment knob; flags win
// (resolution order flag > env > default, via internal/config).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/internal/config"
	"repro/internal/pipeline"
	"repro/internal/sched"
)

func main() {
	addrFlag := flag.String("addr", "", "listen address (default $"+config.EnvServeAddr+", else :8080)")
	slotsFlag := flag.String("slots", "", "concurrent run slots (default: scheduler budget capacity)")
	queueFlag := flag.String("queue", "", "admission queue depth (default $"+config.EnvServeQueue+", else 64)")
	tenantsFlag := flag.String("tenants", "", "tenant weights, e.g. alice=4,bob=1 (default $"+config.EnvServeTenants+")")
	flag.Parse()

	addr := config.String(*addrFlag, config.EnvServeAddr, ":8080")

	slots := sched.Shared().Capacity()
	if v := config.String(*slotsFlag, "", ""); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			log.Fatalf("repro-serve: -slots %q: want a positive integer", v)
		}
		slots = n
	}

	queueCap := 64
	if v := config.String(*queueFlag, config.EnvServeQueue, ""); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			log.Fatalf("repro-serve: queue depth %q: want a non-negative integer", v)
		}
		queueCap = n
	}

	var weights map[string]int
	if v := config.String(*tenantsFlag, config.EnvServeTenants, ""); v != "" {
		w, err := config.ParseTenantWeights(v)
		if err != nil {
			log.Fatalf("repro-serve: %v", err)
		}
		weights = w
	}

	srv := newServer(slots, queueCap, weights)
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv.handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// SIGTERM/SIGINT begin a graceful drain: stop admitting, let in-flight
	// requests return their results, then exit 0. A second signal kills the
	// process the default way (the NotifyContext registration is undone
	// once the first fires).
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("repro-serve: listening on %s (slots=%d queue=%d tenants=%s)",
		addr, slots, queueCap, config.FormatTenantWeights(weights))

	select {
	case err := <-errc:
		log.Fatalf("repro-serve: %v", err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("repro-serve: draining")
	srv.drain()
	// If this daemon is itself a worker against a remote cache, let its
	// trailing artifact publishes reach the fleet before exiting.
	if !pipeline.RemoteFlush(5 * time.Second) {
		fmt.Fprintf(os.Stderr, "repro-serve: remote publish queue did not drain\n")
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "repro-serve: drain: %v\n", err)
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "repro-serve: %v\n", err)
		os.Exit(1)
	}
	log.Printf("repro-serve: drained, exiting")
}
