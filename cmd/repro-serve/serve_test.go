package main

// Daemon tests, all against the in-process handler (httptest): the warm
// path (a second identical POST is served entirely from cache), compile
// batching (N concurrent identical requests cost one compile), graceful
// drain (in-flight requests return their results), admission rejection,
// stride fairness, and NDJSON batch streaming.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pipeline"
)

// post sends one /run request and decodes the Result.
func post(t *testing.T, ts *httptest.Server, tenant string, req *pipeline.Request) (*pipeline.Result, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest("POST", ts.URL+"/run", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		hr.Header.Set(tenantHeader, tenant)
	}
	resp, err := ts.Client().Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res pipeline.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatalf("decoding response (status %d): %v", resp.StatusCode, err)
	}
	return &res, resp.StatusCode
}

// uniqueSrc returns a module whose cache key nothing else in this process
// shares — not other tests, and not an earlier -count run of the same test
// (the nonce comment changes the content address without changing the
// program) — so each test observes its own compile.
var srcNonce atomic.Int64

func uniqueSrc(tag int) string {
	return fmt.Sprintf(`
int main() {  /* nonce %d.%d */
  print_int(%d);
  print_nl();
  return 0;
}`, os.Getpid(), srcNonce.Add(1), tag)
}

// TestWarmPath is the acceptance criterion: the second identical POST is
// served entirely from the in-memory cache — Misses == 0, MemHits == 1 —
// with counters identical to the first run.
func TestWarmPath(t *testing.T) {
	ts := httptest.NewServer(newServer(4, 16, nil).handler())
	defer ts.Close()
	req := &pipeline.Request{Module: uniqueSrc(4101), Engine: "chrome"}

	first, code := post(t, ts, "", req)
	if code != http.StatusOK || first.Err != nil {
		t.Fatalf("first: status %d err %v", code, first.Err)
	}
	if first.Stdout != "4101\n" {
		t.Fatalf("first stdout %q", first.Stdout)
	}
	if first.Cache.Misses != 1 || first.Cache.MemHits != 0 {
		t.Fatalf("first request should compile: %+v", first.Cache)
	}

	second, code := post(t, ts, "", req)
	if code != http.StatusOK || second.Err != nil {
		t.Fatalf("second: status %d err %v", code, second.Err)
	}
	if second.Cache.Misses != 0 || second.Cache.MemHits != 1 {
		t.Fatalf("warm request must not compile: %+v", second.Cache)
	}
	if second.Counters != first.Counters {
		t.Errorf("warm run diverged:\nfirst  %+v\nsecond %+v", first.Counters, second.Counters)
	}
}

// TestArtifactRoutesMounted pins that the daemon serves the shared remote
// cache next to /run: the artifact endpoints are routed (inventory answers
// JSON, a bad address answers 400, a miss 404) on the same mux.
func TestArtifactRoutesMounted(t *testing.T) {
	t.Setenv("REPRO_CACHE_DIR", t.TempDir())
	ts := httptest.NewServer(newServer(2, 8, nil).handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/artifacts")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /artifacts = %d, want 200", resp.StatusCode)
	}
	var inv pipeline.RemoteTotals
	if err := json.NewDecoder(resp.Body).Decode(&inv); err != nil {
		t.Fatalf("inventory is not JSON: %v", err)
	}
	if inv.Count != 0 {
		t.Errorf("fresh store inventory = %+v, want empty", inv)
	}

	if resp, err := ts.Client().Get(ts.URL + "/artifact/garbage/alsogarbage"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad artifact address = %d, want 400", resp.StatusCode)
		}
	}
	miss := ts.URL + "/artifact/c-0123456789abcdef/" + strings.Repeat("ab", 32)
	if resp, err := ts.Client().Get(miss); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("artifact miss = %d, want 404", resp.StatusCode)
		}
	}
}

// TestSingleflightBatching is the other acceptance criterion: concurrent
// identical requests trigger exactly one compile, observable as a global
// Misses delta of 1 across the burst.
func TestSingleflightBatching(t *testing.T) {
	ts := httptest.NewServer(newServer(8, 64, nil).handler())
	defer ts.Close()
	req := &pipeline.Request{Module: uniqueSrc(4202), Engine: "native"}

	before := pipeline.Stats()
	const n = 12
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for range n {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(req)
			resp, err := ts.Client().Post(ts.URL+"/run", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var res pipeline.Result
			if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
				errs <- err
				return
			}
			if res.Err != nil {
				errs <- fmt.Errorf("run error: %v", res.Err)
				return
			}
			if res.Stdout != "4202\n" {
				errs <- fmt.Errorf("stdout %q", res.Stdout)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	delta := pipeline.Stats().Sub(before)
	if delta.Misses != 1 {
		t.Errorf("%d identical concurrent requests cost %d compiles, want 1", n, delta.Misses)
	}
	if delta.MemHits != n-1 {
		t.Errorf("mem hits %d, want %d", delta.MemHits, n-1)
	}

	// /statz must expose the same counters to external observers.
	resp, err := ts.Client().Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Cache.Misses < 1 {
		t.Errorf("/statz cache misses %d, want >= 1", st.Cache.Misses)
	}
	if st.Serve.Served < n {
		t.Errorf("/statz served %d, want >= %d", st.Serve.Served, n)
	}
	if st.Budget.Capacity < 1 {
		t.Errorf("/statz budget capacity %d", st.Budget.Capacity)
	}
}

// busySrc runs long enough (~tens of ms) that a test can act while it is
// in flight.
const busySrc = `
int main() {
  int i; int acc;
  acc = 0;
  for (i = 0; i < 3000000; i++) { acc += i; }
  print_int(1);
  print_nl();
  return 0;
}`

// TestDrainCompletesInFlight: drain rejects new work and flips /healthz to
// 503, but an already-admitted request still returns its result.
func TestDrainCompletesInFlight(t *testing.T) {
	srv := newServer(2, 8, nil)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	type outcome struct {
		res  *pipeline.Result
		code int
	}
	done := make(chan outcome, 1)
	go func() {
		res, code := post(t, ts, "", &pipeline.Request{Module: busySrc, Engine: "native"})
		done <- outcome{res, code}
	}()
	// Wait until the request is actually in flight before draining.
	for i := 0; srv.inflight.Load() == 0 && i < 500; i++ {
		time.Sleep(2 * time.Millisecond)
	}
	if srv.inflight.Load() == 0 {
		t.Fatal("request never went in flight")
	}
	srv.drain()

	if resp, err := ts.Client().Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("/healthz while draining: %d, want 503", resp.StatusCode)
		}
	}
	if _, code := post(t, ts, "", &pipeline.Request{Module: uniqueSrc(4303), Engine: "native"}); code != http.StatusServiceUnavailable {
		t.Errorf("new request while draining: %d, want 503", code)
	}

	o := <-done
	if o.code != http.StatusOK || o.res.Err != nil {
		t.Fatalf("in-flight request: status %d err %v", o.code, o.res.Err)
	}
	if o.res.Stdout != "1\n" || o.res.ExitCode != 0 {
		t.Errorf("in-flight result: exit %d stdout %q", o.res.ExitCode, o.res.Stdout)
	}
}

// TestAdmissionRejects: with one slot and a zero-depth queue, a second
// concurrent request is turned away with 429, not queued forever.
func TestAdmissionRejects(t *testing.T) {
	ts := httptest.NewServer(newServer(1, 0, nil).handler())
	defer ts.Close()

	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, code := post(t, ts, "", &pipeline.Request{Module: busySrc, Engine: "chrome"})
		close(release)
		_ = res
		_ = code
	}()
	// Busy-wait for the slot to be taken, then collide with it. If the
	// first run finishes before we get our request in, the test still
	// passes vacuously on the retry check below, so spin fast.
	deadline := time.Now().Add(5 * time.Second)
	got429 := false
	for time.Now().Before(deadline) {
		select {
		case <-release:
			// First run already finished; can no longer provoke contention.
			deadline = time.Time{}
		default:
		}
		if deadline.IsZero() {
			break
		}
		_, code := post(t, ts, "", &pipeline.Request{Module: uniqueSrc(4404), Engine: "native"})
		if code == http.StatusTooManyRequests {
			got429 = true
			break
		}
	}
	wg.Wait()
	if !got429 {
		t.Skip("first run finished before contention could be provoked (loaded machine)")
	}
}

// TestBadRequest: malformed JSON and unknown engines are 400s with a
// bad_request error class, echoed in the standard Result shape.
func TestBadRequest(t *testing.T) {
	ts := httptest.NewServer(newServer(2, 8, nil).handler())
	defer ts.Close()

	resp, err := ts.Client().Post(ts.URL+"/run", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: %d, want 400", resp.StatusCode)
	}

	res, code := post(t, ts, "", &pipeline.Request{Module: uniqueSrc(4505), Engine: "z80"})
	if code != http.StatusBadRequest {
		t.Errorf("unknown engine: %d, want 400", code)
	}
	if res.Err == nil || res.Err.Class != pipeline.ClassBadRequest {
		t.Errorf("unknown engine error: %+v", res.Err)
	}
}

// TestBatchNDJSON: a JSON array body streams one NDJSON row per element,
// tagged with the element's index, in completion order.
func TestBatchNDJSON(t *testing.T) {
	ts := httptest.NewServer(newServer(4, 16, nil).handler())
	defer ts.Close()

	body, _ := json.Marshal([]*pipeline.Request{
		{Module: uniqueSrc(4606), Engine: "native"},
		{Module: uniqueSrc(4607), Engine: "native"},
		{Module: `int main() { return `, Engine: "native"}, // compile error row
	})
	resp, err := ts.Client().Post(ts.URL+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	rows := map[int]*pipeline.Result{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var row batchRow
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("bad row %q: %v", sc.Text(), err)
		}
		rows[row.Index] = row.Result
	}
	if err := sc.Err(); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	if rows[0].Stdout != "4606\n" || rows[1].Stdout != "4607\n" {
		t.Errorf("row outputs: %q %q", rows[0].Stdout, rows[1].Stdout)
	}
	if rows[2].Err == nil || rows[2].Err.Class != pipeline.ClassCompile {
		t.Errorf("compile-error row: %+v", rows[2].Err)
	}
}

// TestStrideFairness drives the admitter directly (no HTTP, no timing):
// with one slot and both tenants saturated, grants follow the 4:1 weight
// ratio.
func TestStrideFairness(t *testing.T) {
	a := newAdmitter(1, 100, map[string]int{"heavy": 4, "light": 1})
	ctx := context.Background()

	// Occupy the only slot so every admit below queues.
	if err := a.admit(ctx, "seed"); err != nil {
		t.Fatal(err)
	}
	granted := make(chan string, 32)
	var wg sync.WaitGroup
	enqueue := func(name string, n int) {
		for range n {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := a.admit(ctx, name); err != nil {
					t.Error(err)
					return
				}
				granted <- name
			}()
		}
	}
	enqueue("heavy", 12)
	enqueue("light", 12)
	// Wait until all 24 waiters are queued, so dispatch sees both tenants.
	for i := 0; i < 1000; i++ {
		if _, queued, _ := a.snapshot(); queued == 24 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, queued, _ := a.snapshot(); queued != 24 {
		t.Fatalf("queued %d, want 24", queued)
	}

	a.release("seed") // hands the slot to the first waiter
	counts := map[string]int{}
	var order []string
	for range 15 {
		name := <-granted
		order = append(order, name)
		counts[name]++
		a.release(name) // grants the next waiter
	}
	// Drain the rest so the goroutines finish.
	go func() {
		for name := range granted {
			a.release(name)
		}
	}()
	wg.Wait()
	close(granted)

	// 15 grants at 4:1 → 12 heavy, 3 light. Allow one grant of slack for
	// the initial tie-break.
	if counts["heavy"] < 11 || counts["light"] < 2 {
		t.Errorf("grant ratio off: %v (order %v)", counts, order)
	}
}
