package main

// HTTP layer of the repro-serve daemon. Three endpoints:
//
//	POST /run      one pipeline.Request (JSON object) → one pipeline.Result;
//	               or a batch (JSON array) → NDJSON rows streamed as each
//	               run completes, each row tagged with its array index.
//	GET  /healthz  200 "ok" while serving, 503 "draining" during shutdown.
//	GET  /statz    JSON snapshot: build-cache counters, scheduler budget,
//	               fault-injection counters, per-tenant admission state.
//
// Identical concurrent requests batch into one compile for free: the verbs
// go through the pipeline's content-addressed singleflight cache, so the
// daemon adds admission and fairness, not another cache.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/pipeline"
	"repro/internal/sched"
)

// tenantHeader names the request's tenant for weighted fair admission;
// absent means the shared "anon" tenant.
const tenantHeader = "X-Repro-Tenant"

// maxBodyBytes bounds a /run body; modules are source text, so 8 MiB is
// generous.
const maxBodyBytes = 8 << 20

type server struct {
	adm      *admitter
	draining atomic.Bool
	served   atomic.Uint64
	inflight atomic.Int64
}

func newServer(slots, queueCap int, weights map[string]int) *server {
	return &server{adm: newAdmitter(slots, queueCap, weights)}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /run", s.handleRun)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statz", s.handleStatz)
	// The shared artifact cache: workers pointed at $REPRO_REMOTE_CACHE
	// fetch and publish compiled modules here, namespaced by their
	// compiler fingerprint. Served over the daemon's own store location.
	artifacts := pipeline.ArtifactHandler()
	mux.Handle("/artifact/", artifacts)
	mux.Handle("GET /artifacts", artifacts)
	return mux
}

// drain flips the server into shutdown mode: /healthz turns 503 so load
// balancers stop routing here, and new /run requests are rejected while
// in-flight ones run to completion.
func (s *server) drain() {
	s.draining.Store(true)
	s.adm.drain()
}

// writeError sends a pipeline-shaped error Result with the given HTTP
// status, so clients parse exactly one response schema.
func writeError(w http.ResponseWriter, status int, class pipeline.ErrClass, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	res := &pipeline.Result{ExitCode: -1, Err: &pipeline.ErrorInfo{Class: class, Message: fmt.Sprintf(format, args...)}}
	json.NewEncoder(w).Encode(res)
}

// statusFor maps an admission error to its HTTP status.
func admissionStatus(err error) (int, pipeline.ErrClass) {
	switch err {
	case errQueueFull:
		return http.StatusTooManyRequests, pipeline.ClassInternal
	case errDraining:
		return http.StatusServiceUnavailable, pipeline.ClassCanceled
	default:
		return http.StatusServiceUnavailable, pipeline.ClassCanceled
	}
}

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, pipeline.ClassCanceled, "server draining")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, pipeline.ClassBadRequest, "reading body: %v", err)
		return
	}
	if len(body) > maxBodyBytes {
		writeError(w, http.StatusRequestEntityTooLarge, pipeline.ClassBadRequest, "body over %d bytes", maxBodyBytes)
		return
	}
	tenant := r.Header.Get(tenantHeader)
	if tenant == "" {
		tenant = "anon"
	}
	if isJSONArray(body) {
		s.runBatch(w, r, tenant, body)
		return
	}
	var req pipeline.Request
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, pipeline.ClassBadRequest, "decoding request: %v", err)
		return
	}
	res, status := s.runOne(w, r, tenant, &req)
	if res == nil {
		return // admission error already written
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(res)
}

// runOne admits, runs, and converts one request to a serializable Result.
// A nil Result means the admission failure was already written to w.
func (s *server) runOne(w http.ResponseWriter, r *http.Request, tenant string, req *pipeline.Request) (*pipeline.Result, int) {
	if err := s.adm.admit(r.Context(), tenant); err != nil {
		status, class := admissionStatus(err)
		writeError(w, status, class, "%v", err)
		return nil, 0
	}
	defer s.adm.release(tenant)
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	defer s.served.Add(1)
	res, err := pipeline.Do(r.Context(), req)
	if err != nil {
		res = pipeline.ResultForError(err)
		if pipeline.Classify(err) == pipeline.ClassBadRequest {
			return res, http.StatusBadRequest
		}
		// Run-level failures (compile, timeout, fault, runtime) are
		// successful *service* responses: the Result carries the class.
		return res, http.StatusOK
	}
	return res, http.StatusOK
}

// batchRow is one NDJSON line of a batch response: the array index of the
// request it answers plus its Result. Rows stream in completion order.
type batchRow struct {
	Index  int              `json:"index"`
	Result *pipeline.Result `json:"result"`
}

// runBatch fans a JSON array of requests out through admission (each
// element is admitted separately, so a big batch cannot monopolize slots)
// and streams one NDJSON row per element as it completes.
func (s *server) runBatch(w http.ResponseWriter, r *http.Request, tenant string, body []byte) {
	var reqs []*pipeline.Request
	if err := json.Unmarshal(body, &reqs); err != nil {
		writeError(w, http.StatusBadRequest, pipeline.ClassBadRequest, "decoding batch: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	var mu sync.Mutex
	enc := json.NewEncoder(w)
	emit := func(i int, res *pipeline.Result) {
		mu.Lock()
		defer mu.Unlock()
		enc.Encode(batchRow{Index: i, Result: res})
		if flusher != nil {
			flusher.Flush()
		}
	}
	var wg sync.WaitGroup
	for i, req := range reqs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if req == nil {
				emit(i, pipeline.ResultForError(fmt.Errorf("null request")))
				return
			}
			if err := s.adm.admit(r.Context(), tenant); err != nil {
				emit(i, pipeline.ResultForError(err))
				return
			}
			defer s.adm.release(tenant)
			s.inflight.Add(1)
			defer s.inflight.Add(-1)
			defer s.served.Add(1)
			res, err := pipeline.Do(r.Context(), req)
			if err != nil {
				res = pipeline.ResultForError(err)
			}
			emit(i, res)
		}()
	}
	wg.Wait()
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// statz is the /statz response shape.
type statz struct {
	Cache  pipeline.CacheStats  `json:"cache"`
	Budget budgetStat           `json:"budget"`
	Faults map[string]faultStat `json:"faults,omitempty"`
	Serve  serveStat            `json:"serve"`
	Remote *pipeline.RemoteInfo `json:"remote,omitempty"`
}

type budgetStat struct {
	Capacity int `json:"capacity"`
	InUse    int `json:"in_use"`
	Peak     int `json:"peak"`
}

type faultStat struct {
	Hits  uint64 `json:"hits"`
	Fired uint64 `json:"fired"`
}

type serveStat struct {
	Served   uint64                `json:"served"`
	Inflight int64                 `json:"inflight"`
	Queued   int                   `json:"queued"`
	Draining bool                  `json:"draining"`
	Tenants  map[string]tenantStat `json:"tenants"`
}

func (s *server) handleStatz(w http.ResponseWriter, r *http.Request) {
	b := sched.Shared()
	st := statz{
		Cache: pipeline.Stats(),
		Budget: budgetStat{
			Capacity: b.Capacity(),
			InUse:    b.InUse(),
			Peak:     b.Peak(),
		},
	}
	if fault.Enabled() {
		st.Faults = map[string]faultStat{}
		for _, site := range []string{
			fault.SiteCompile, fault.SiteExec, fault.SiteSyscall,
			fault.SiteStoreRead, fault.SiteStoreWrite,
			fault.SiteRemoteGet, fault.SiteRemotePut, fault.SiteRemoteVerify,
		} {
			if h, f := fault.Hits(site), fault.Fired(site); h > 0 || f > 0 {
				st.Faults[site] = faultStat{Hits: h, Fired: f}
			}
		}
	}
	if info, ok := pipeline.RemoteState(); ok {
		st.Remote = &info
	}
	tenants, queued, draining := s.adm.snapshot()
	st.Serve = serveStat{
		Served:   s.served.Load(),
		Inflight: s.inflight.Load(),
		Queued:   queued,
		Draining: draining,
		Tenants:  tenants,
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

// isJSONArray reports whether the body's first non-space byte opens a JSON
// array (a batch request).
func isJSONArray(b []byte) bool {
	for _, c := range b {
		switch c {
		case ' ', '\t', '\n', '\r':
			continue
		case '[':
			return true
		default:
			return false
		}
	}
	return false
}
