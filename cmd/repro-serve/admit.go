package main

// Weighted fair admission. The daemon bounds how many requests run at once
// (run slots, defaulting to the shared scheduler budget's capacity) and,
// when requests queue for a slot, grants slots across tenants by stride
// scheduling: a tenant with weight w holds a virtual "pass" that advances
// by strideBase/w per grant, and the waiting tenant with the lowest pass is
// served next. Heavier tenants advance slower, so they are picked
// proportionally more often — alice=4,bob=1 converges to a 4:1 grant ratio
// under contention while staying work-conserving when only one tenant is
// active.

import (
	"context"
	"errors"
	"sort"
	"sync"
)

// strideBase is the stride numerator; weights divide it, so the ratio of
// two tenants' strides is the inverse ratio of their weights.
const strideBase = 1 << 16

// errQueueFull rejects a request when the daemon's waiting queue is at
// capacity — the client should back off and retry (HTTP 429).
var errQueueFull = errors.New("admission queue full")

// errDraining rejects new work once the daemon has begun shutting down
// (HTTP 503); in-flight requests still complete.
var errDraining = errors.New("server draining")

// ticket is one request waiting for a run slot.
type ticket struct {
	tn *tenant
	// ready is closed by dispatch when the slot is granted.
	ready chan struct{}
	// canceled marks an abandoned ticket (client gone before grant);
	// dispatch discards it without spending a slot.
	canceled bool
}

// tenant is the admission state of one X-Repro-Tenant value.
type tenant struct {
	name   string
	weight int
	// pass is the stride-scheduling virtual time; the waiting tenant with
	// the lowest pass is granted the next free slot.
	pass uint64
	// queue is this tenant's FIFO of waiting tickets.
	queue []*ticket
	// inflight and served count admitted requests (current and lifetime).
	inflight int
	served   uint64
	rejected uint64
}

// admitter hands out run slots with per-tenant weighted fairness.
type admitter struct {
	mu       sync.Mutex
	slots    int // free run slots
	queueCap int // max waiting tickets across all tenants
	queued   int
	draining bool
	weights  map[string]int // configured weights; unlisted tenants get 1
	tenants  map[string]*tenant
}

func newAdmitter(slots, queueCap int, weights map[string]int) *admitter {
	if slots < 1 {
		slots = 1
	}
	if queueCap < 0 {
		queueCap = 0
	}
	return &admitter{
		slots:    slots,
		queueCap: queueCap,
		weights:  weights,
		tenants:  map[string]*tenant{},
	}
}

// tenantFor returns (creating if needed) the named tenant. A new tenant
// starts at the minimum pass currently in play, so joining late neither
// starves it nor lets it monopolize slots with a stale low pass.
func (a *admitter) tenantFor(name string) *tenant {
	t := a.tenants[name]
	if t != nil {
		return t
	}
	w := a.weights[name]
	if w <= 0 {
		w = 1
	}
	t = &tenant{name: name, weight: w}
	var minPass uint64
	first := true
	for _, o := range a.tenants {
		if o.inflight > 0 || len(o.queue) > 0 {
			if first || o.pass < minPass {
				minPass, first = o.pass, false
			}
		}
	}
	if !first {
		t.pass = minPass
	}
	a.tenants[name] = t
	return t
}

// admit blocks until the named tenant is granted a run slot, the context is
// canceled, or the request is rejected (queue full, draining). Every
// successful admit must be paired with release.
func (a *admitter) admit(ctx context.Context, name string) error {
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		return errDraining
	}
	t := a.tenantFor(name)
	if a.slots > 0 && a.queued == 0 {
		// Fast path: a free slot and nobody waiting.
		a.grantLocked(t)
		a.mu.Unlock()
		return nil
	}
	if a.queued >= a.queueCap {
		t.rejected++
		a.mu.Unlock()
		return errQueueFull
	}
	tk := &ticket{tn: t, ready: make(chan struct{})}
	t.queue = append(t.queue, tk)
	a.queued++
	a.mu.Unlock()

	select {
	case <-tk.ready:
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		select {
		case <-tk.ready:
			// Lost the race: the slot was granted while we were
			// canceling. Hand it back so it is not leaked.
			a.releaseLocked(t)
			a.mu.Unlock()
			return ctx.Err()
		default:
		}
		tk.canceled = true
		a.queued--
		a.mu.Unlock()
		return ctx.Err()
	}
}

// grantLocked spends a slot on tenant t and advances its pass.
func (a *admitter) grantLocked(t *tenant) {
	a.slots--
	t.inflight++
	t.served++
	t.pass += strideBase / uint64(t.weight)
}

// release returns a run slot and dispatches it to the fairest waiter.
func (a *admitter) release(name string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.releaseLocked(a.tenantFor(name))
}

func (a *admitter) releaseLocked(t *tenant) {
	a.slots++
	t.inflight--
	a.dispatchLocked()
}

// dispatchLocked grants free slots to waiting tickets, lowest pass first,
// discarding canceled tickets as it finds them.
func (a *admitter) dispatchLocked() {
	for a.slots > 0 {
		var next *tenant
		for _, t := range a.tenants {
			// Drop abandoned tickets at the head of each queue.
			for len(t.queue) > 0 && t.queue[0].canceled {
				t.queue = t.queue[1:]
			}
			if len(t.queue) == 0 {
				continue
			}
			if next == nil || t.pass < next.pass || (t.pass == next.pass && t.name < next.name) {
				next = t
			}
		}
		if next == nil {
			return
		}
		tk := next.queue[0]
		next.queue = next.queue[1:]
		a.queued--
		a.grantLocked(next)
		close(tk.ready)
	}
}

// drain stops admitting new work. Requests already admitted or queued were
// accepted and still complete — http.Server.Shutdown waits for their
// handlers — only requests arriving after drain are turned away.
func (a *admitter) drain() {
	a.mu.Lock()
	a.draining = true
	a.mu.Unlock()
}

// tenantStat is one tenant's row in /statz.
type tenantStat struct {
	Weight   int    `json:"weight"`
	Inflight int    `json:"inflight"`
	Queued   int    `json:"queued"`
	Served   uint64 `json:"served"`
	Rejected uint64 `json:"rejected,omitempty"`
}

// snapshot returns the admission state for /statz, keyed by tenant name.
func (a *admitter) snapshot() (tenants map[string]tenantStat, queued int, draining bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	tenants = make(map[string]tenantStat, len(a.tenants))
	names := make([]string, 0, len(a.tenants))
	for n := range a.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t := a.tenants[n]
		waiting := 0
		for _, tk := range t.queue {
			if !tk.canceled {
				waiting++
			}
		}
		tenants[n] = tenantStat{
			Weight:   t.weight,
			Inflight: t.inflight,
			Queued:   waiting,
			Served:   t.served,
			Rejected: t.rejected,
		}
	}
	return tenants, a.queued, a.draining
}
