// Command benchjson converts `go test -bench` output into a JSON artifact
// for CI trend tracking. It parses the standard benchmark line format —
// name, iteration count, then value/unit pairs (ns/op, B/op, allocs/op, and
// custom ReportMetric units like sim-inst/s) — and emits one
// perf.BenchReport document (schema repro-bench/v1) keyed by benchmark
// name, so per-PR artifacts (BENCH_ci.json) can be compared across commits
// with cmd/benchtrend.
//
// Usage:
//
//	go test -bench . -benchtime=1x -run '^$' | benchjson -out BENCH_ci.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/perf"
)

func main() {
	in := flag.String("in", "", "bench output to read (default stdin)")
	out := flag.String("out", "", "JSON file to write (default stdout)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}

	rep, err := parse(r)
	if err != nil {
		fatal(err)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
}

// parse scans bench output for result lines. Lines that do not look like
// benchmark results (test logs, the PASS trailer, figure listings) are
// skipped.
func parse(r io.Reader) (*perf.BenchReport, error) {
	rep := &perf.BenchReport{Schema: perf.BenchSchema}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		b, ok := parseLine(sc.Text())
		if ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	return rep, sc.Err()
}

// parseLine parses one `Benchmark<Name>-P  N  v1 u1  v2 u2 ...` line.
func parseLine(line string) (perf.Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 2 || !strings.HasPrefix(f[0], "Benchmark") {
		return perf.Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return perf.Benchmark{}, false
	}
	name := strings.TrimPrefix(f[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	b := perf.Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		b.Metrics[f[i+1]] = v
	}
	return b, len(b.Metrics) > 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
