// Command browsix-spec regenerates the paper's tables and figures.
//
// Usage:
//
//	browsix-spec -table 1|2|3|4
//	browsix-spec -fig 1|3a|3b|4|5|6|7|8|9|10
//	browsix-spec -all
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/codegen"
	"repro/internal/pipeline"
	"repro/internal/spec"
)

func main() {
	table := flag.String("table", "", "regenerate a table (1-4)")
	fig := flag.String("fig", "", "regenerate a figure (1, 3a, 3b, 4-10)")
	all := flag.Bool("all", false, "regenerate everything")
	workers := flag.Int("workers", 0, "suite parallelism (0 = GOMAXPROCS)")
	cachestats := flag.Bool("cachestats", false, "report per-suite build-cache traffic (memory/disk/miss) on stderr")
	degraded := flag.Bool("degraded", false, "survive individual workload failures: render FAILED rows, report a failure summary, exit nonzero")
	fidelity := flag.String("fidelity", "", "simulation tier: exact, functional, sampled (default $REPRO_FIDELITY, else exact)")
	flag.Parse()

	fid, windows, err := codegen.ResolveFidelity(*fidelity)
	if err != nil {
		fmt.Fprintln(os.Stderr, "browsix-spec:", err)
		os.Exit(2)
	}

	h := spec.NewHarness()
	h.Workers = *workers
	h.Degraded = *degraded
	h.Fidelity = fid
	h.SampleWindows = windows
	exitCode := 0
	reportTotals := func() {}
	if *cachestats {
		h.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "browsix-spec: "+format+"\n", args...)
		}
		reportTotals = func() { fmt.Fprintf(os.Stderr, "browsix-spec: totals %v\n", pipeline.Stats()) }
		defer reportTotals()
	}
	emit := func(s string, err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "browsix-spec:", err)
			// os.Exit skips deferred calls; a failing run is exactly when
			// the cache picture matters, so report before exiting.
			reportTotals()
			os.Exit(1)
		}
		fmt.Println(s)
	}

	var specRes, polyRes, asmRes *spec.SuiteResults
	needSpec := func() *spec.SuiteResults {
		if specRes == nil {
			r, err := h.RunSPEC()
			if err != nil && r == nil {
				emit("", err)
			}
			if err != nil {
				// Degraded run: results usable, failure summary to stderr,
				// nonzero exit at the end.
				fmt.Fprintln(os.Stderr, "browsix-spec:", err)
				exitCode = 1
			}
			specRes = r
		}
		return specRes
	}
	needPoly := func() *spec.SuiteResults {
		if polyRes == nil {
			r, err := h.RunPolybench()
			if err != nil && r == nil {
				emit("", err)
			}
			if err != nil {
				// Degraded run: results usable, failure summary to stderr,
				// nonzero exit at the end.
				fmt.Fprintln(os.Stderr, "browsix-spec:", err)
				exitCode = 1
			}
			polyRes = r
		}
		return polyRes
	}
	needAsm := func() *spec.SuiteResults {
		if asmRes == nil {
			r, err := h.RunAsmJS()
			if err != nil && r == nil {
				emit("", err)
			}
			if err != nil {
				// Degraded run: results usable, failure summary to stderr,
				// nonzero exit at the end.
				fmt.Fprintln(os.Stderr, "browsix-spec:", err)
				exitCode = 1
			}
			asmRes = r
		}
		return asmRes
	}

	run := func(which string) {
		switch which {
		case "table1", "1":
			emit(spec.Table1(needSpec()), nil)
		case "table2", "2":
			s, err := h.Table2()
			emit(s, err)
		case "table3", "3":
			emit(spec.Table3(), nil)
		case "table4", "4":
			emit(spec.Table4(needSpec()), nil)
		case "fig1":
			emit(spec.Fig1(needPoly()), nil)
		case "fig3a":
			emit(spec.Fig3(needPoly(), "Figure 3a — PolybenchC"), nil)
		case "fig3b":
			emit(spec.Fig3(needSpec(), "Figure 3b — SPEC CPU"), nil)
		case "fig4":
			emit(spec.Fig4(needSpec()), nil)
		case "fig5":
			emit(spec.Fig5(needSpec(), needAsm()), nil)
		case "fig6":
			emit(spec.Fig6(needSpec(), needAsm()), nil)
		case "fig7":
			s, err := spec.Fig7()
			emit(s, err)
		case "fig8":
			s, err := h.Fig8()
			emit(s, err)
		case "fig9":
			emit(spec.Fig9(needSpec()), nil)
		case "fig10":
			emit(spec.Fig10(needSpec()), nil)
		default:
			fmt.Fprintf(os.Stderr, "browsix-spec: unknown selector %q\n", which)
			os.Exit(2)
		}
	}

	switch {
	case *all:
		for _, w := range []string{
			"fig1", "fig3a", "fig3b", "table1", "table2", "fig4",
			"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "table3", "table4",
		} {
			run(w)
		}
	case *table != "":
		run("table" + *table)
	case *fig != "":
		run("fig" + *fig)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if exitCode != 0 {
		// os.Exit skips deferred calls; report the cache picture first.
		reportTotals()
		os.Exit(exitCode)
	}
}
