// Package repro reproduces "Not So Fast: Analyzing the Performance of
// WebAssembly vs. Native Code" (Jangda, Powers, Berger, Guha; USENIX ATC
// 2019) as a self-contained Go system: a WebAssembly toolchain, a mini-C
// compiler standing in for Emscripten, modeled browser and native code
// generators, an x86-64 simulator with hardware performance counters, a
// Browsix-Wasm kernel, and the Browsix-SPEC harness that regenerates every
// table and figure of the paper's evaluation.
//
// See README.md for the quickstart and the runtime-knob table, and
// DESIGN.md for the package inventory, the simulator's execution engine,
// the run pipeline, and the scheduler-budget design. The root-level
// benchmarks (bench_test.go) regenerate each experiment:
//
//	go test -bench . -benchtime 1x
package repro
